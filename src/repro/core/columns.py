"""Flat per-port column storage for the vectorized batch-slot engine.

The vectorized engine (:mod:`repro.core.columnar`) keeps switch state as
struct-of-arrays columns indexed by output port instead of per-packet
objects. Two backends provide the columns:

* ``numpy`` — ``int64``/``float64`` ndarrays; enables whole-array
  transmission updates (``head_residual -= active_mask``).
* ``python`` — :class:`array.array` typecodes ``'q'``/``'d'``; a pure
  stdlib fallback used when numpy is unavailable (or forced via
  ``REPRO_VECTOR_BACKEND=python``), with a per-port loop in the
  transmission phase.

Columns whose access pattern is scalar-per-arrival (queue lengths, value
totals, cached victim codes) are deliberately plain Python lists —
CPython list indexing beats ndarray scalar access by ~5x, and the hot
arrival loops touch one element at a time. Only columns consumed by
whole-array operations (head residuals, the active-port mask) use the
backend arrays. :func:`scalar_int_column` / :func:`scalar_float_column`
build the list-backed columns so the layout is defined in one place.

Backend selection happens once per process, controlled by the
``REPRO_VECTOR_BACKEND`` environment variable: ``auto`` (default; numpy
when importable), ``numpy`` (require numpy, raise otherwise), or
``python`` (never import numpy).
"""

from __future__ import annotations

import os
from array import array
from typing import Any, List, Sequence

from repro.core.errors import ConfigError

#: Environment variable controlling backend selection.
BACKEND_ENV = "REPRO_VECTOR_BACKEND"

_VALID = ("auto", "numpy", "python")

_backend: str | None = None
_np: Any = None


def _resolve() -> str:
    raw = os.environ.get(BACKEND_ENV, "auto").strip().lower() or "auto"
    if raw not in _VALID:
        raise ConfigError(
            f"{BACKEND_ENV}={raw!r} invalid; expected one of {_VALID}"
        )
    if raw == "python":
        return "python"
    global _np
    try:
        import numpy
    except ImportError:
        if raw == "numpy":
            raise ConfigError(
                f"{BACKEND_ENV}=numpy but numpy is not importable"
            ) from None
        return "python"
    _np = numpy
    return "numpy"


def backend() -> str:
    """The resolved column backend: ``"numpy"`` or ``"python"``.

    Resolved lazily on first use and cached for the process lifetime, so
    tests may set ``REPRO_VECTOR_BACKEND`` before touching the engine.
    """
    global _backend
    if _backend is None:
        _backend = _resolve()
    return _backend


def reset_backend_cache() -> None:
    """Forget the cached backend choice (test hook)."""
    global _backend, _np
    _backend = None
    _np = None


def numpy_module() -> Any:
    """The numpy module when the backend is ``numpy``, else ``None``."""
    backend()
    return _np


def int_column(n: int, fill: int = 0) -> Any:
    """A length-``n`` signed 64-bit column on the active backend."""
    if backend() == "numpy":
        return _np.full(n, fill, dtype=_np.int64)
    return array("q", [fill]) * n if n else array("q")


def float_column(n: int, fill: float = 0.0) -> Any:
    """A length-``n`` float64 column on the active backend."""
    if backend() == "numpy":
        return _np.full(n, fill, dtype=_np.float64)
    return array("d", [fill]) * n if n else array("d")


def scalar_int_column(n: int, fill: int = 0) -> List[int]:
    """A list-backed integer column for scalar-hot access patterns."""
    return [fill] * n


def scalar_float_column(n: int, fill: float = 0.0) -> List[float]:
    """A list-backed float column for scalar-hot access patterns."""
    return [fill] * n


def int_column_from(values: Sequence[int]) -> Any:
    """A signed 64-bit column holding ``values`` on the active backend."""
    if backend() == "numpy":
        return _np.asarray(values, dtype=_np.int64)
    return array("q", values)


def float_column_from(values: Sequence[float]) -> Any:
    """A float64 column holding ``values`` on the active backend."""
    if backend() == "numpy":
        return _np.asarray(values, dtype=_np.float64)
    return array("d", values)


def column_list(col: Any) -> List[Any]:
    """Materialize any column as a plain list (for invariant checks)."""
    return [col[i] for i in range(len(col))]
