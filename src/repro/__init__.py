"""shmem-switch: shared memory buffer management for heterogeneous packet
processing.

A complete reproduction of Eugster, Kogan, Nikolenko & Sirotkin,
*"Shared Memory Buffer Management for Heterogeneous Packet Processing"*
(ICDCS 2014): the slotted shared-memory switch model, every buffer-
management policy the paper analyzes (including the 2-competitive
Longest-Work-Drop policy and the conjectured-constant Maximal-Ratio-Drop
policy), the OPT references, MMPP traffic generation, the adversarial
lower-bound constructions of Theorems 1-11, and the Fig. 5 simulation
study.

Quickstart
----------
>>> from repro import (
...     SwitchConfig, LWD, processing_workload, measure_competitive_ratio,
... )
>>> config = SwitchConfig.contiguous(k=8, buffer_size=64)
>>> trace = processing_workload(config, n_slots=500, load=2.0, seed=1)
>>> result = measure_competitive_ratio(LWD(), trace, config)
>>> result.ratio >= 1.0
True
"""

from repro.analysis import (
    CompetitiveResult,
    PolicySystem,
    SweepResult,
    measure_competitive_ratio,
    run_scenario,
    run_sweep,
    run_system,
)
from repro.core import (
    ACCEPT,
    DROP,
    Action,
    ConfigError,
    Decision,
    Packet,
    PolicyError,
    PortSpec,
    QueueDiscipline,
    ReproError,
    ResilienceError,
    SharedMemorySwitch,
    SweepExecutionError,
    SweepInterrupted,
    SwitchConfig,
    SwitchMetrics,
    SwitchView,
    TraceError,
    push_out,
)
from repro.opt import (
    MaxValueSurrogate,
    ScriptedPolicy,
    SrptSurrogate,
    TinyInstance,
    exhaustive_opt,
    make_surrogate,
)
from repro.policies import (
    BPD,
    BPD1,
    LQD,
    LWD,
    MRD,
    MVD,
    MVD1,
    NEST,
    NHDT,
    NHST,
    GreedyNonPushOut,
    LQDValue,
    NHSTValue,
    Policy,
    available_policies,
    make_policy,
)
from repro.resilience import (
    FaultInjector,
    InjectedFault,
    ResilienceStats,
    RunJournal,
    SupervisorOptions,
)
from repro.traffic import (
    AdversarialScenario,
    MmppFleet,
    MmppParams,
    MmppSource,
    Trace,
    burst,
    processing_workload,
    value_port_workload,
    value_uniform_workload,
)

__version__ = "1.0.0"

__all__ = [
    "ACCEPT",
    "AdversarialScenario",
    "Action",
    "BPD",
    "BPD1",
    "CompetitiveResult",
    "ConfigError",
    "DROP",
    "Decision",
    "FaultInjector",
    "GreedyNonPushOut",
    "InjectedFault",
    "LQD",
    "LQDValue",
    "LWD",
    "MRD",
    "MVD",
    "MVD1",
    "MaxValueSurrogate",
    "MmppFleet",
    "MmppParams",
    "MmppSource",
    "NEST",
    "NHDT",
    "NHST",
    "NHSTValue",
    "Packet",
    "Policy",
    "PolicyError",
    "PolicySystem",
    "PortSpec",
    "QueueDiscipline",
    "ReproError",
    "ResilienceError",
    "ResilienceStats",
    "RunJournal",
    "ScriptedPolicy",
    "SharedMemorySwitch",
    "SrptSurrogate",
    "SupervisorOptions",
    "SweepExecutionError",
    "SweepInterrupted",
    "SweepResult",
    "SwitchConfig",
    "SwitchMetrics",
    "SwitchView",
    "TinyInstance",
    "Trace",
    "TraceError",
    "available_policies",
    "burst",
    "exhaustive_opt",
    "make_policy",
    "make_surrogate",
    "measure_competitive_ratio",
    "processing_workload",
    "push_out",
    "run_scenario",
    "run_sweep",
    "run_system",
    "value_port_workload",
    "value_uniform_workload",
    "__version__",
]
