"""The rule registry: codes, scopes, and the ``@rule`` decorator.

A rule is a function ``(ModuleContext) -> Iterable[Finding-args]``
registered under a unique ``RCxxx`` code. Rules yield *locations* —
``(node_or_line, message)`` pairs — and the registry wraps them into
:class:`~repro.check.findings.Finding` objects so individual rules
never deal with paths or formatting.

Code blocks
-----------
* ``RC1xx`` determinism lint
* ``RC2xx`` hot-path allocation audit
* ``RC3xx`` policy-API conformance
* ``RC4xx`` exception / IO hygiene
* ``RC5xx`` concurrency discipline (lock-set races, event-loop
  blocking, thread lifecycle)
* ``RC6xx`` wire-protocol / schema conformance
* ``RC9xx`` analyzer meta findings (parse errors, suppression misuse);
  these are emitted by the runner itself, not by registered rules, and
  are **not suppressible**.

``scope`` restricts a rule to modules under the given dotted package
prefixes (matched against :attr:`ModuleContext.module`); ``None`` runs
the rule on every file.

Rules come in two *kinds*. ``kind="module"`` rules (the PR 5 model)
see one :class:`ModuleContext` at a time and yield
``(node_or_line, message)``. ``kind="project"`` rules — registered via
:func:`project_rule` — run once over the whole analyzed tree: they
receive the phase-2 :class:`~repro.check.facts.ProjectContext` and
yield ``(module_ctx, node_or_line, message)`` triples, so one rule can
anchor findings in several files (a producer in ``protocol.py`` and
its missing consumer in ``coordinator.py``). Project findings carry
``scope: "project"`` in the v2 JSON report and participate in the same
per-file suppression machinery as module findings.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.check.context import ModuleContext
from repro.check.facts import ProjectContext
from repro.check.findings import Finding
from repro.core.errors import ConfigError

#: A rule yields (ast node or 1-based line number, message) pairs.
Location = Union[ast.AST, int]
RuleFn = Callable[[ModuleContext], Iterable[Tuple[Location, str]]]
#: A project rule yields (module ctx, ast node or line, message) triples.
ProjectRuleFn = Callable[
    [ProjectContext], Iterable[Tuple[ModuleContext, Location, str]]
]

_CODE_RE = re.compile(r"^RC\d{3}$")

#: Meta codes reserved for the runner (parse errors, suppression misuse).
META_PARSE_ERROR = "RC900"
META_MISSING_JUSTIFICATION = "RC901"
META_UNUSED_SUPPRESSION = "RC902"
META_CODES = (
    META_PARSE_ERROR,
    META_MISSING_JUSTIFICATION,
    META_UNUSED_SUPPRESSION,
)


def _location_pos(location: Location) -> Tuple[int, int]:
    if isinstance(location, int):
        return location, 0
    return (
        getattr(location, "lineno", 1),
        getattr(location, "col_offset", 0),
    )


@dataclass(frozen=True)
class Rule:
    """One registered static-analysis rule (module- or project-kind)."""

    code: str
    name: str
    summary: str
    fn: Union[RuleFn, ProjectRuleFn]
    scope: Optional[Tuple[str, ...]] = None
    kind: str = "module"

    def applies_to(self, ctx: ModuleContext) -> bool:
        if self.scope is None:
            return True
        return ctx.in_package(*self.scope)

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Execute a module rule, wrapping its locations into findings."""
        if self.kind != "module":
            raise ConfigError(
                f"rule {self.code} is project-kind; use run_project()"
            )
        fn: RuleFn = self.fn  # type: ignore[assignment]
        for location, message in fn(ctx):
            line, col = _location_pos(location)
            yield Finding(
                code=self.code,
                rule=self.name,
                path=ctx.display_path,
                line=line,
                col=col,
                message=message,
            )

    def run_project(self, project: ProjectContext) -> Iterator[Finding]:
        """Execute a project rule over the whole analyzed tree."""
        if self.kind != "project":
            raise ConfigError(
                f"rule {self.code} is module-kind; use run()"
            )
        fn: ProjectRuleFn = self.fn  # type: ignore[assignment]
        for ctx, location, message in fn(project):
            line, col = _location_pos(location)
            yield Finding(
                code=self.code,
                rule=self.name,
                path=ctx.display_path,
                line=line,
                col=col,
                message=message,
                scope="project",
            )


_RULES: Dict[str, Rule] = {}


def rule(
    code: str,
    name: str,
    summary: str,
    *,
    scope: Optional[Iterable[str]] = None,
) -> Callable[[RuleFn], RuleFn]:
    """Register the decorated function as rule ``code``.

    ``name`` is a short kebab-case label used in output and docs;
    ``summary`` is the one-line catalogue description. Duplicate or
    malformed codes raise :class:`~repro.core.errors.ConfigError` at
    import time — a broken rule pack should never half-load.
    """
    if not _CODE_RE.match(code):
        raise ConfigError(f"bad rule code {code!r}; expected RCnnn")
    if code in META_CODES:
        raise ConfigError(f"rule code {code} is reserved for the runner")

    def decorator(fn: RuleFn) -> RuleFn:
        if code in _RULES:
            raise ConfigError(f"rule {code} already registered")
        _RULES[code] = Rule(
            code=code,
            name=name,
            summary=summary,
            fn=fn,
            scope=tuple(scope) if scope is not None else None,
        )
        return fn

    return decorator


def project_rule(
    code: str,
    name: str,
    summary: str,
) -> Callable[[ProjectRuleFn], ProjectRuleFn]:
    """Register the decorated function as project-kind rule ``code``.

    Project rules run once per analysis (not once per file) and see
    the merged :class:`~repro.check.facts.ProjectContext`. They scope
    themselves by querying ``project.in_packages(...)``, so no
    ``scope`` parameter is taken here.
    """
    if not _CODE_RE.match(code):
        raise ConfigError(f"bad rule code {code!r}; expected RCnnn")
    if code in META_CODES:
        raise ConfigError(f"rule code {code} is reserved for the runner")

    def decorator(fn: ProjectRuleFn) -> ProjectRuleFn:
        if code in _RULES:
            raise ConfigError(f"rule {code} already registered")
        _RULES[code] = Rule(
            code=code,
            name=name,
            summary=summary,
            fn=fn,
            scope=None,
            kind="project",
        )
        return fn

    return decorator


def module_rules() -> List[Rule]:
    """Registered module-kind rules, ordered by code."""
    return [r for r in all_rules() if r.kind == "module"]


def project_rules() -> List[Rule]:
    """Registered project-kind rules, ordered by code."""
    return [r for r in all_rules() if r.kind == "project"]


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by code."""
    return [_RULES[code] for code in sorted(_RULES)]


def get_rule(code: str) -> Rule:
    found = _RULES.get(code)
    if found is None:
        raise ConfigError(
            f"unknown rule {code!r}; known: {', '.join(sorted(_RULES))}"
        )
    return found


def select_rules(codes: Optional[Iterable[str]]) -> List[Rule]:
    """Rules for the ``--rules`` CLI filter (``None`` = all)."""
    if codes is None:
        return all_rules()
    return [get_rule(code) for code in codes]
