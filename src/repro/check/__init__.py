"""``repro check``: contract-aware static analysis over this repository.

The engine's headline guarantees are *contracts*, not code: sweeps are
byte-identical across serial/parallel/faulted execution, policies touch
switch state only through the public :class:`~repro.core.switch.
SwitchView` surface, observers receive frozen snapshots, and the PR 2
fast path must stay allocation-lean. Every one of those contracts used
to be enforced only dynamically — a stray ``time.time()`` or a direct
queue mutation in a new policy broke determinism in ways the
differential suites caught late or never.

This package is the static analogue: an AST-based analyzer (stdlib
``ast`` only, no third-party dependencies) with a small rule framework
and a rule pack encoding the repo's real invariants:

* **Determinism lint** (``RC1xx``) — no wall-clock reads, no unseeded
  or global RNG state, no entropy sources, no unordered ``set``
  iteration, no ``id()``-keyed orderings inside the deterministic
  packages (``repro.core``, ``repro.policies``, ``repro.traffic``,
  ``repro.opt``).
* **Hot-path allocation audit** (``RC2xx``) — functions marked with
  :func:`repro.core.hotpath.hot_path` may not allocate closures,
  build comprehension temporaries inside loops, format strings outside
  ``raise`` statements, or repeat deep attribute lookups in loops.
* **Policy-API conformance** (``RC3xx``) — policy modules may only use
  the public ``SwitchView`` surface: no private-attribute pokes, no
  attribute stores on foreign objects (frozen ``PacketEvent``/
  ``Packet`` snapshots included), no calls to engine mutators.
* **Exception / IO hygiene** (``RC4xx``) — no bare ``except``, no
  swallowed ``BaseException`` outside the resilience supervisor, and
  all result-file writes go through :mod:`repro.resilience.atomic`.
* **Concurrency discipline** (``RC5xx``) — a static lock-set race
  detector over the farm's declared lock ownership
  (``# repro: guarded-by[attr]=_lock`` + ``@guarded_by``), blocking
  calls in ``@event_loop`` methods, explicit thread ``daemon=`` flags,
  and no unbounded ``.wait()``/``.join()``.
* **Wire/schema conformance** (``RC6xx``) — the farm NDJSON protocol
  checked against the single ``MESSAGE_KINDS`` declaration (kind and
  key-set agreement between producer and consumer sites), JSONL
  writer/replayer symmetry, and schema-version consistency.

The RC1xx–RC4xx packs are *module* rules (one file at a time); RC5xx's
lock-set analysis and all of RC6xx are *project* rules: the analyzer
runs in two phases — per-module fact collection
(:mod:`repro.check.facts`), then cross-module rules over the merged
fact table — so a producer in one file and its missing consumer in
another is a finding with no runtime test required.

Findings can be suppressed per line with a justified pragma::

    handle = path.open("a")  # repro: allow[RCnnn] -- <why this is sound>

A suppression without justification text is itself a finding
(``RC901``), as is a suppression that no longer matches anything
(``RC902``; ``repro check --fix-suppressions`` deletes those).

See ``docs/STATIC_ANALYSIS.md`` for the full rule catalogue and
``repro check --help`` for the CLI.
"""

from __future__ import annotations

from repro.check.facts import ModuleFacts, ProjectContext, collect_facts
from repro.check.findings import CheckReport, Finding
from repro.check.registry import (
    Rule,
    all_rules,
    get_rule,
    project_rule,
    rule,
)
from repro.check.runner import (
    check_file,
    check_source,
    run_check,
    run_check_sources,
)

# Importing the rule modules registers the rule pack.
from repro.check.rules import (  # noqa: F401
    concurrency,
    conformance,
    determinism,
    hotpath,
    hygiene,
    policy_api,
)

__all__ = [
    "CheckReport",
    "Finding",
    "ModuleFacts",
    "ProjectContext",
    "Rule",
    "all_rules",
    "check_file",
    "check_source",
    "collect_facts",
    "get_rule",
    "project_rule",
    "rule",
    "run_check",
    "run_check_sources",
]
