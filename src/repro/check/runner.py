"""The analyzer driver: expand paths, run rules, apply suppressions.

:func:`run_check` is the single entry point used by the CLI, the test
suite, and CI. Since PR 10 the run has **two phases**:

1. every Python source is parsed once into a
   :class:`~repro.check.context.ModuleContext`, module-kind rules run
   per file, and per-module facts are collected
   (:mod:`repro.check.facts`);
2. project-kind rules run once over the merged
   :class:`~repro.check.facts.ProjectContext`, relating sites across
   files (lock-set races, wire-protocol producer/consumer agreement).

Project findings route back through the *owning file's* suppression
index, so a justified ``allow[RCnnn]`` pragma works exactly like it
does for module rules, and pragma staleness (RC902) is judged only
after both phases have had the chance to mark a pragma used.

Meta findings (``RC9xx``) are produced here rather than by registered
rules because they are about the analyzer's own machinery and must not
be suppressible — a pragma that silences "your pragma is unjustified"
would be a hole in the contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.check.context import ModuleContext
from repro.check.facts import ProjectContext
from repro.check.findings import CheckReport, Finding
from repro.check.registry import (
    META_MISSING_JUSTIFICATION,
    META_PARSE_ERROR,
    META_UNUSED_SUPPRESSION,
    Rule,
    select_rules,
)
from repro.check.suppressions import SuppressionIndex, strip_suppressions
from repro.core.errors import ConfigError

#: Directory names never descended into during path expansion.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "build", "dist"}


def expand_paths(paths: Sequence[Path | str]) -> List[Path]:
    """The ``.py`` files under ``paths``, sorted for stable output."""
    files: List[Path] = []
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    files.append(candidate)
        elif path.suffix == ".py":
            files.append(path)
        elif not path.exists():
            raise ConfigError(f"no such file or directory: {path}")
    return files


@dataclass
class _Unit:
    """One successfully parsed file flowing through both phases."""

    ctx: ModuleContext
    suppressions: SuppressionIndex
    source: str
    path: Path


def check_source(
    source: str,
    *,
    path: Path | str = "<string>",
    rules: Optional[Iterable[str]] = None,
) -> CheckReport:
    """Analyze a source string with module rules only.

    This is the snippet-level entry point used by unit tests; it keeps
    the PR 5 semantics (no project phase — a lone snippet is not a
    project). Use :func:`run_check_sources` to run the full two-phase
    analysis over a set of in-memory modules.
    """
    report = CheckReport(files_scanned=1)
    selected = select_rules(list(rules) if rules is not None else None)
    module_rules = [r for r in selected if r.kind == "module"]
    unit = _parse_unit(source, Path(path), report)
    if unit is not None:
        _run_module_rules(unit, module_rules, report)
        _finish_unit(
            unit,
            report,
            fix_suppressions=False,
            report_unused=rules is None,
        )
    return report.sorted()


def check_file(
    path: Path | str, *, rules: Optional[Iterable[str]] = None
) -> CheckReport:
    """Analyze a single file (both phases; the file is the project)."""
    return run_check([Path(path)], rules=rules)


def run_check(
    paths: Sequence[Path | str],
    *,
    rules: Optional[Iterable[str]] = None,
    fix_suppressions: bool = False,
    project: bool = True,
) -> CheckReport:
    """Analyze every Python file under ``paths``.

    ``rules`` restricts the run to the given ``RCxxx`` codes (meta
    findings are always produced). ``project=False`` skips phase 2
    (the cross-module rules). With ``fix_suppressions`` stale pragmas
    (RC902) are deleted from the files in place and reported as fixed
    rather than as findings.
    """
    sources: Dict[Path, str] = {}
    for file_path in expand_paths(paths):
        try:
            sources[file_path] = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            raise ConfigError(f"cannot read {file_path}: {exc}") from exc
    return _run(
        sources,
        rules=rules,
        fix_suppressions=fix_suppressions,
        project=project,
    )


def run_check_sources(
    sources: Mapping[str, str],
    *,
    rules: Optional[Iterable[str]] = None,
    project: bool = True,
) -> CheckReport:
    """Two-phase analysis over in-memory modules (test entry point).

    ``sources`` maps a display path (used for module-name derivation,
    e.g. ``"src/repro/farm/coordinator.py"``) to source text.
    """
    return _run(
        {Path(path): text for path, text in sources.items()},
        rules=rules,
        fix_suppressions=False,
        project=project,
    )


def _run(
    sources: Mapping[Path, str],
    *,
    rules: Optional[Iterable[str]],
    fix_suppressions: bool,
    project: bool,
) -> CheckReport:
    selected = select_rules(list(rules) if rules is not None else None)
    module_rules = [r for r in selected if r.kind == "module"]
    project_rules = [r for r in selected if r.kind == "project"]

    report = CheckReport()
    units: List[_Unit] = []

    # Phase 1: parse everything, run module rules per file.
    for file_path, source in sources.items():
        report.files_scanned += 1
        unit = _parse_unit(source, file_path, report)
        if unit is None:
            continue
        units.append(unit)
        _run_module_rules(unit, module_rules, report)

    # Phase 2: cross-module rules over the merged fact table.
    if project and project_rules and units:
        by_path = {unit.ctx.display_path: unit for unit in units}
        ctx_project = ProjectContext.build([unit.ctx for unit in units])
        for rule in project_rules:
            for finding in rule.run_project(ctx_project):
                owner = by_path.get(finding.path)
                if owner is not None and owner.suppressions.matches(
                    finding.code, finding.line
                ):
                    report.suppressed += 1
                else:
                    report.findings.append(finding)

    # Suppression meta checks last: a pragma used only by a project
    # finding must not be judged stale by an earlier per-file pass.
    # A --rules subset (or --no-project) would misread pragmas for
    # unselected rules as stale, so staleness is only judged on
    # full-rule-set runs.
    report_unused = rules is None and project
    for unit in units:
        _finish_unit(
            unit,
            report,
            fix_suppressions=fix_suppressions,
            report_unused=report_unused,
        )
    return report.sorted()


def _parse_unit(
    source: str, path: Path, report: CheckReport
) -> Optional[_Unit]:
    """Parse one source blob; RC900 into ``report`` on failure."""
    try:
        ctx = ModuleContext.from_source(source, path=path)
    except SyntaxError as exc:
        report.findings.append(
            Finding(
                code=META_PARSE_ERROR,
                rule="parse-error",
                path=str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"cannot parse: {exc.msg}",
            )
        )
        return None
    return _Unit(
        ctx=ctx,
        suppressions=SuppressionIndex.parse(ctx.lines),
        source=source,
        path=path,
    )


def _run_module_rules(
    unit: _Unit, rules: List[Rule], report: CheckReport
) -> None:
    for rule in rules:
        if not rule.applies_to(unit.ctx):
            continue
        for finding in rule.run(unit.ctx):
            if unit.suppressions.matches(finding.code, finding.line):
                report.suppressed += 1
            else:
                report.findings.append(finding)


def _finish_unit(
    unit: _Unit,
    report: CheckReport,
    *,
    fix_suppressions: bool,
    report_unused: bool,
) -> None:
    """Suppression meta findings (RC901/RC902) for one file."""
    display = unit.ctx.display_path
    for pragma in unit.suppressions.unjustified():
        report.findings.append(
            Finding(
                code=META_MISSING_JUSTIFICATION,
                rule="suppression-missing-justification",
                path=display,
                line=pragma.line,
                col=0,
                message=(
                    "suppression needs a justification: "
                    "# repro: allow[{}] -- <why>".format(",".join(pragma.codes))
                ),
            )
        )

    stale = unit.suppressions.unused() if report_unused else []
    if stale and fix_suppressions and unit.path.exists():
        fixed = strip_suppressions(unit.ctx.lines, stale)
        text = "\n".join(fixed)
        if unit.source.endswith("\n"):
            text += "\n"
        # Lazy import: repro.check must stay importable without pulling
        # the resilience package in (and this is a cold, explicit path).
        from repro.resilience.atomic import atomic_write_text

        atomic_write_text(unit.path, text)
        return
    for pragma in stale:
        report.findings.append(
            Finding(
                code=META_UNUSED_SUPPRESSION,
                rule="unused-suppression",
                path=display,
                line=pragma.line,
                col=0,
                message=(
                    "suppression [{}] matches no finding; delete it or "
                    "run `repro check --fix-suppressions`".format(
                        ",".join(pragma.codes)
                    )
                ),
            )
        )
