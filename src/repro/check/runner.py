"""The analyzer driver: expand paths, run rules, apply suppressions.

:func:`run_check` is the single entry point used by the CLI, the test
suite, and CI. It walks the given files/directories, parses each
Python source once, runs every applicable rule, filters findings
through the file's suppression pragmas, and reports suppression misuse
(missing justifications, stale pragmas) as meta findings.

Meta findings (``RC9xx``) are produced here rather than by registered
rules because they are about the analyzer's own machinery and must not
be suppressible — a pragma that silences "your pragma is unjustified"
would be a hole in the contract.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.check.context import ModuleContext
from repro.check.findings import CheckReport, Finding
from repro.check.registry import (
    META_MISSING_JUSTIFICATION,
    META_PARSE_ERROR,
    META_UNUSED_SUPPRESSION,
    Rule,
    select_rules,
)
from repro.check.suppressions import SuppressionIndex, strip_suppressions
from repro.core.errors import ConfigError

#: Directory names never descended into during path expansion.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "build", "dist"}


def expand_paths(paths: Sequence[Path | str]) -> List[Path]:
    """The ``.py`` files under ``paths``, sorted for stable output."""
    files: List[Path] = []
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    files.append(candidate)
        elif path.suffix == ".py":
            files.append(path)
        elif not path.exists():
            raise ConfigError(f"no such file or directory: {path}")
    return files


def check_source(
    source: str,
    *,
    path: Path | str = "<string>",
    rules: Optional[Iterable[str]] = None,
) -> CheckReport:
    """Analyze a source string (the test suite's entry point)."""
    report = CheckReport(files_scanned=1)
    _check_one(
        source,
        Path(path),
        select_rules(list(rules) if rules is not None else None),
        report,
        fix_suppressions=False,
        report_unused=rules is None,
    )
    return report.sorted()


def check_file(
    path: Path | str, *, rules: Optional[Iterable[str]] = None
) -> CheckReport:
    """Analyze a single file."""
    return run_check([Path(path)], rules=rules)


def run_check(
    paths: Sequence[Path | str],
    *,
    rules: Optional[Iterable[str]] = None,
    fix_suppressions: bool = False,
) -> CheckReport:
    """Analyze every Python file under ``paths``.

    ``rules`` restricts the run to the given ``RCxxx`` codes (meta
    findings are always produced). With ``fix_suppressions`` stale
    pragmas (RC902) are deleted from the files in place and reported
    as fixed rather than as findings.
    """
    selected = select_rules(list(rules) if rules is not None else None)
    report = CheckReport()
    for file_path in expand_paths(paths):
        report.files_scanned += 1
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            raise ConfigError(f"cannot read {file_path}: {exc}") from exc
        _check_one(
            source,
            file_path,
            selected,
            report,
            fix_suppressions=fix_suppressions,
            report_unused=rules is None,
        )
    return report.sorted()


def _check_one(
    source: str,
    path: Path,
    rules: List[Rule],
    report: CheckReport,
    *,
    fix_suppressions: bool,
    report_unused: bool = True,
) -> None:
    """Analyze one source blob, appending into ``report``."""
    display = str(path)
    try:
        ctx = ModuleContext.from_source(source, path=path)
    except SyntaxError as exc:
        report.findings.append(
            Finding(
                code=META_PARSE_ERROR,
                rule="parse-error",
                path=display,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"cannot parse: {exc.msg}",
            )
        )
        return

    suppressions = SuppressionIndex.parse(ctx.lines)
    for rule in rules:
        if not rule.applies_to(ctx):
            continue
        for finding in rule.run(ctx):
            if suppressions.matches(finding.code, finding.line):
                report.suppressed += 1
            else:
                report.findings.append(finding)

    for pragma in suppressions.unjustified():
        report.findings.append(
            Finding(
                code=META_MISSING_JUSTIFICATION,
                rule="suppression-missing-justification",
                path=display,
                line=pragma.line,
                col=0,
                message=(
                    "suppression needs a justification: "
                    "# repro: allow[{}] -- <why>".format(",".join(pragma.codes))
                ),
            )
        )

    # A --rules subset would misread pragmas for unselected rules as
    # stale, so staleness is only judged on full-rule-set runs.
    stale = suppressions.unused() if report_unused else []
    if stale and fix_suppressions and path.exists():
        fixed = strip_suppressions(ctx.lines, stale)
        text = "\n".join(fixed)
        if source.endswith("\n"):
            text += "\n"
        # Lazy import: repro.check must stay importable without pulling
        # the resilience package in (and this is a cold, explicit path).
        from repro.resilience.atomic import atomic_write_text

        atomic_write_text(path, text)
        return
    for pragma in stale:
        report.findings.append(
            Finding(
                code=META_UNUSED_SUPPRESSION,
                rule="unused-suppression",
                path=display,
                line=pragma.line,
                col=0,
                message=(
                    "suppression [{}] matches no finding; delete it or "
                    "run `repro check --fix-suppressions`".format(
                        ",".join(pragma.codes)
                    )
                ),
            )
        )
