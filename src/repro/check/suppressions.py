"""Inline suppression pragmas: ``# repro: allow[RCxxx] -- why``.

A finding can be silenced in exactly one way: a pragma naming the code
and carrying a justification after `` -- ``. The pragma either sits on
the offending line itself or on a standalone comment line directly
above it (for lines too long to hold both code and justification)::

    handle = path.open("a")  # repro: allow[RCnnn] -- appends are flushed per record

    # repro: allow[RCnnn] -- the differential test reaches into the index on purpose
    orderings = view.index.registered_kinds

Multiple codes separate with commas: ``allow[RC301,RC302]``. The
justification is mandatory — a pragma without one is reported as
``RC901`` and suppresses nothing. A pragma whose codes never matched a
finding is reported as ``RC902`` (stale suppressions rot; ``repro
check --fix-suppressions`` deletes them from the file).

Parsing is line-based on purpose: pragmas must be visually attached to
what they excuse, and the analyzer never guesses across blank lines.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<codes>[A-Z0-9,\s]+)\]"
    r"(?:\s*--\s*(?P<why>.*\S))?"
)

#: A standalone pragma line: nothing but whitespace before the comment.
_STANDALONE_RE = re.compile(r"^\s*#")


@dataclass
class Suppression:
    """One parsed pragma."""

    line: int  # 1-based line the pragma sits on
    target_line: int  # 1-based line it applies to
    codes: Tuple[str, ...]
    justification: str
    used: Set[str] = field(default_factory=set)

    @property
    def justified(self) -> bool:
        return bool(self.justification.strip())


@dataclass
class SuppressionIndex:
    """All pragmas of one file, queryable by (code, line)."""

    suppressions: List[Suppression] = field(default_factory=list)
    _by_line: Dict[int, List[Suppression]] = field(default_factory=dict)

    @classmethod
    def parse(cls, lines: Sequence[str]) -> "SuppressionIndex":
        index = cls()
        for lineno, text in enumerate(lines, start=1):
            match = _PRAGMA_RE.search(text)
            if match is None:
                continue
            codes = tuple(
                code.strip()
                for code in match.group("codes").split(",")
                if code.strip()
            )
            standalone = _STANDALONE_RE.match(text) is not None
            suppression = Suppression(
                line=lineno,
                target_line=lineno + 1 if standalone else lineno,
                codes=codes,
                justification=match.group("why") or "",
            )
            index.suppressions.append(suppression)
            index._by_line.setdefault(
                suppression.target_line, []
            ).append(suppression)
        return index

    def matches(self, code: str, line: int) -> bool:
        """Whether a *justified* pragma covers ``code`` at ``line``.

        Marks the pragma as used; unjustified pragmas never match (they
        are themselves findings).
        """
        for suppression in self._by_line.get(line, ()):
            if code in suppression.codes and suppression.justified:
                suppression.used.add(code)
                return True
        return False

    def unjustified(self) -> List[Suppression]:
        return [s for s in self.suppressions if not s.justified]

    def unused(self) -> List[Suppression]:
        """Justified pragmas none of whose codes suppressed anything."""
        return [
            s for s in self.suppressions if s.justified and not s.used
        ]


def strip_suppressions(
    lines: Sequence[str], doomed: Sequence[Suppression]
) -> List[str]:
    """Source lines with the given pragmas removed.

    A standalone pragma line disappears entirely; a trailing pragma is
    cut back to the code before the comment (trailing whitespace
    trimmed). Used by ``repro check --fix-suppressions`` to delete
    stale (RC902) pragmas.
    """
    doomed_lines = {s.line for s in doomed}
    result: List[str] = []
    for lineno, text in enumerate(lines, start=1):
        if lineno not in doomed_lines:
            result.append(text)
            continue
        if _STANDALONE_RE.match(text):
            continue  # whole-line pragma: drop the line
        match = _PRAGMA_RE.search(text)
        assert match is not None  # doomed lines were parsed as pragmas
        result.append(text[: match.start()].rstrip())
    return result
