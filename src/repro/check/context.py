"""Per-module analysis context shared by all rules.

A :class:`ModuleContext` bundles everything a rule needs to inspect one
source file: the parsed AST, the raw source lines, the module's dotted
name (which scopes rule packs — determinism rules only fire inside the
simulation packages), and an import table that resolves local names
back to their defining module so rules can match fully-qualified call
targets (``np.random.default_rng`` and
``from numpy.random import default_rng`` both resolve to
``numpy.random.default_rng``).

Module names are derived from the file path (the segment after a
``src`` directory, or the first ``repro`` segment). Files outside the
package tree — the self-test corpus under ``tests/`` in particular —
can pin their module identity with a pragma near the top of the file::

    # repro: module=repro.policies.example

which makes scoped rules treat the file as if it lived at that import
path.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

_MODULE_PRAGMA = re.compile(r"#\s*repro:\s*module=([\w.]+)")

#: How many leading lines are searched for the module pragma.
_PRAGMA_SEARCH_LINES = 10


def derive_module_name(path: Path) -> str:
    """Dotted module name for ``path``, or ``""`` when underivable.

    ``src/repro/core/switch.py`` -> ``repro.core.switch``;
    ``repro/viz.py`` -> ``repro.viz``; paths with no ``src`` or
    ``repro`` segment yield the empty string (rules scoped to a
    package then skip the file unless it carries a module pragma).
    """
    parts = list(path.parts)
    if path.suffix == ".py":
        parts[-1] = path.stem
    for anchor in ("src", "repro"):
        if anchor in parts[:-1] or (anchor == "repro" and parts[-1] == anchor):
            idx = parts.index(anchor)
            tail = parts[idx + 1 :] if anchor == "src" else parts[idx:]
            if tail:
                if tail[-1] == "__init__":
                    tail = tail[:-1]
                if tail:
                    return ".".join(tail)
    return ""


def _pragma_module(source: str) -> Optional[str]:
    for line in source.splitlines()[:_PRAGMA_SEARCH_LINES]:
        match = _MODULE_PRAGMA.search(line)
        if match:
            return match.group(1)
    return None


def build_import_table(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted path they were imported from.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from numpy.random import default_rng as rng`` ->
    ``{"rng": "numpy.random.default_rng"}``. Relative imports resolve
    with their leading dots stripped (rule matching is prefix-based on
    absolute names, and this repo uses absolute imports throughout).
    """
    table: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else alias.name.split(".")[0]
                table[local] = origin
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                table[local] = f"{base}.{alias.name}" if base else alias.name
    return table


@dataclass
class ModuleContext:
    """Everything rules need to analyze one parsed source file."""

    path: Path
    display_path: str
    module: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    imports: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_source(
        cls,
        source: str,
        *,
        path: Path | str = "<string>",
        display_path: Optional[str] = None,
    ) -> "ModuleContext":
        """Parse ``source`` into a context (raises ``SyntaxError``)."""
        path = Path(path)
        tree = ast.parse(source, filename=str(path))
        module = _pragma_module(source) or derive_module_name(path)
        return cls(
            path=path,
            display_path=display_path or str(path),
            module=module,
            source=source,
            tree=tree,
            lines=source.splitlines(),
            imports=build_import_table(tree),
        )

    @classmethod
    def from_file(cls, path: Path | str) -> "ModuleContext":
        path = Path(path)
        source = path.read_text(encoding="utf-8")
        return cls.from_source(source, path=path)

    # ------------------------------------------------------------------
    # Name resolution helpers
    # ------------------------------------------------------------------

    def in_package(self, *prefixes: str) -> bool:
        """Whether this module lives under any of the dotted prefixes."""
        for prefix in prefixes:
            if self.module == prefix or self.module.startswith(prefix + "."):
                return True
        return False

    def dotted_name(self, node: ast.expr) -> Optional[str]:
        """The plain dotted source text of a Name/Attribute chain.

        ``a.b.c`` -> ``"a.b.c"``; anything rooted in a call, subscript
        or literal yields ``None``.
        """
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if isinstance(current, ast.Name):
            parts.append(current.id)
            return ".".join(reversed(parts))
        return None

    def resolve(self, node: ast.expr) -> Optional[str]:
        """Fully-qualified name of a Name/Attribute chain, if importable.

        Follows the import table for the root name: with
        ``import numpy as np``, ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng``. A root that was never imported
        resolves to its dotted source text (so builtins like ``open``
        and locally-defined names come back verbatim).
        """
        dotted = self.dotted_name(node)
        if dotted is None:
            return None
        root, _, rest = dotted.partition(".")
        origin = self.imports.get(root, root)
        return f"{origin}.{rest}" if rest else origin

    def call_target(self, node: ast.Call) -> Optional[str]:
        """``resolve()`` applied to a call's function expression."""
        return self.resolve(node.func)
