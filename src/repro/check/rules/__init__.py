"""The built-in rule packs.

Importing a rule module registers its rules; :mod:`repro.check`'s
package ``__init__`` imports all six packs so ``repro check`` always
runs the full catalogue. See ``docs/STATIC_ANALYSIS.md`` for the
rationale and an example per code.
"""

from __future__ import annotations
