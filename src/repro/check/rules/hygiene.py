"""Exception and IO hygiene (RC4xx): fail loudly, publish atomically.

Scope: all of ``repro``. Two failure classes bit this repo's ancestors
hard enough to earn rules:

* **Swallowed exceptions.** The resilience layer's whole design is that
  worker failures *surface* — get retried, quarantined, and reported.
  A bare ``except:`` (or a ``BaseException`` handler that does not
  re-raise) anywhere else eats ``KeyboardInterrupt``/``SystemExit``
  and turns a clean 130-exit into a hung sweep. Only
  ``repro.resilience.supervisor`` may catch ``BaseException`` without
  re-raising: catching worker death in all forms is its job.

* **Torn writes.** Every durable artifact (reports, benches, traces,
  CSV) must go through :mod:`repro.resilience.atomic` so a crash
  mid-write leaves the previous file, never half a file. Writers that
  implement the tmp+fsync+replace protocol themselves (the cache, the
  JSONL trace writer, the append-mode journal) carry justified inline
  suppressions — which is exactly what the suppression mechanism is
  for.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Tuple

from repro.check.context import ModuleContext
from repro.check.registry import rule

REPRO_PACKAGES = ("repro",)

#: The one module allowed to catch BaseException without re-raising.
_SUPERVISOR_MODULE = "repro.resilience.supervisor"

#: Modules exempt from RC403: the atomic-write primitive itself.
_ATOMIC_MODULES = ("repro.resilience.atomic",)

_WRITE_MODES = frozenset("wax")

#: A string that plausibly IS a file mode (filters out path literals
#: passed positionally to builtin ``open``).
_MODE_RE = re.compile(r"^[rwaxbt+U]+$")


@rule(
    "RC401",
    "bare-except",
    "no bare except clauses",
    scope=REPRO_PACKAGES,
)
def bare_except(ctx: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield node, (
                "bare except catches SystemExit/KeyboardInterrupt; "
                "name the exceptions you can actually handle"
            )


def _reraises(handler: ast.ExceptHandler) -> bool:
    """Whether the handler re-raises (any ``raise`` in its body)."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
    return False


def _catches_base_exception(ctx: ModuleContext, handler: ast.ExceptHandler) -> bool:
    kind = handler.type
    if kind is None:
        return True
    if isinstance(kind, ast.Tuple):
        return any(
            ctx.resolve(element) == "BaseException"
            for element in kind.elts
        )
    return ctx.resolve(kind) == "BaseException"


@rule(
    "RC402",
    "swallowed-base-exception",
    "BaseException handlers must re-raise (supervisor excepted)",
    scope=REPRO_PACKAGES,
)
def swallowed_base_exception(
    ctx: ModuleContext,
) -> Iterator[Tuple[ast.AST, str]]:
    if ctx.module == _SUPERVISOR_MODULE:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            continue  # RC401's finding; don't double-report
        if _catches_base_exception(ctx, node) and not _reraises(node):
            yield node, (
                "except BaseException without re-raise swallows "
                "KeyboardInterrupt/SystemExit; only the resilience "
                "supervisor may do that"
            )


def _literal_mode(node: ast.Call) -> str:
    """The call's file-mode argument if it is a string literal.

    Checks the first positional (after the path for builtin ``open``
    this is position 1, for ``Path.open`` position 0 — both covered)
    and the ``mode=`` keyword. Non-literal modes return ``""``
    (unknowable statically; not flagged).
    """
    candidates = []
    for arg in node.args[:2]:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            candidates.append(arg.value)
    for kw in node.keywords:
        if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
            if isinstance(kw.value.value, str):
                candidates.append(kw.value.value)
    for mode in candidates:
        if _MODE_RE.match(mode) and _WRITE_MODES.intersection(mode):
            return mode
    return ""


@rule(
    "RC403",
    "non-atomic-write",
    "result files are published via repro.resilience.atomic only",
    scope=REPRO_PACKAGES,
)
def non_atomic_write(ctx: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
    if ctx.module in _ATOMIC_MODULES:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        target = ctx.call_target(node)
        if target == "open" or (
            isinstance(node.func, ast.Attribute) and node.func.attr == "open"
        ):
            mode = _literal_mode(node)
            if mode:
                yield node, (
                    f"open(..., {mode!r}) writes in place; a crash "
                    "mid-write leaves a torn file — use "
                    "repro.resilience.atomic (atomic_write_text/json)"
                )
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "write_text"
        ):
            yield node, (
                ".write_text() writes in place; use "
                "repro.resilience.atomic (atomic_write_text/json)"
            )
