"""RC5xx: concurrency discipline for the multi-threaded farm.

PR 9's farm runs an accept thread, per-connection reader threads, and
worker heartbeat threads against shared coordinator state; the locks
that keep that state coherent are load-bearing for the repo's headline
guarantee (byte-identical merges under chaos). These rules make the
lock discipline machine-checked, in the lock-set style of Eraser /
ThreadSanitizer but static: ownership is *declared* (the
``# repro: guarded-by[attr]=_lock`` class pragma and the
``@guarded_by`` / ``@event_loop`` markers from
:mod:`repro.core.concurrency`) and every access site is checked
against the declaration.

* **RC501 guarded-by-violation** (project) — an attribute declared
  ``guarded-by[attr]=_lock`` is accessed outside ``with self._lock:``
  (and outside any ``@guarded_by("_lock")`` method). ``__init__`` is
  exempt: no second thread can exist before construction finishes.
* **RC502 event-loop-blocking** (module) — a blocking call
  (``time.sleep``, socket send/recv/accept/connect, ``open``, a
  zero-arg ``.get()`` / ``.get(block=...)`` queue read without
  ``timeout=``) inside a function marked ``@event_loop``, including
  its nested closures (they run on the loop thread). One blocked call
  stalls every lease clock the loop drives.
* **RC503 thread-daemon-explicit** (module, ``repro.farm``) — every
  ``threading.Thread(...)`` must pass ``daemon=`` explicitly; inherit-
  from-creator is how shutdown hangs are born.
* **RC504 unbounded-wait** (module, ``repro.farm``) — ``.wait()`` /
  ``.join()`` with no arguments and no ``timeout=``. A farm survives
  wedged peers only because every wait has a deadline.
* **RC505 lockset-race** (project) — heuristic race detector: an
  undeclared attribute of a thread-spawning class that is written
  outside ``__init__`` and accessed from ≥2 methods, at least one of
  which is a registered thread target, with an empty lock-set
  intersection across the access sites. Fix by locking, declaring
  ``guarded-by``, or suppressing with the single-writer/GIL-atomicity
  justification.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.check.context import ModuleContext
from repro.check.facts import (
    AttrAccess,
    ProjectContext,
    is_event_loop_marked,
)
from repro.check.registry import Location, project_rule, rule

_FARM = ("repro.farm",)

#: Method names whose call blocks the calling thread (socket/file IO).
_BLOCKING_ATTRS = {"recv", "accept", "connect", "sendall", "send"}


@project_rule(
    "RC501",
    "guarded-by-violation",
    "attribute declared guarded-by[attr]=_lock accessed without the lock",
)
def guarded_by_violation(
    project: ProjectContext,
) -> Iterator[Tuple[ModuleContext, Location, str]]:
    for ctx, facts in project.units:
        if not facts.guard_decls:
            continue
        declared = {
            (decl.cls, decl.attr): decl.lock for decl in facts.guard_decls
        }
        for access in facts.attr_accesses:
            lock = declared.get((access.cls, access.attr))
            if lock is None or access.in_init:
                continue
            if lock in access.locks:
                continue
            verb = "written" if access.is_write else "read"
            yield (
                ctx,
                access.line,
                f"self.{access.attr} is guarded-by[{access.attr}]={lock} "
                f"but {verb} in {access.cls}.{access.method} without "
                f"holding self.{lock} (wrap in `with self.{lock}:` or "
                f'mark the method @guarded_by("{lock}"))',
            )


@rule(
    "RC502",
    "event-loop-blocking",
    "blocking call inside an @event_loop-marked function",
)
def event_loop_blocking(
    ctx: ModuleContext,
) -> Iterator[Tuple[Location, str]]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not is_event_loop_marked(ctx, node):
            continue
        # Nested defs are NOT skipped: closures defined in the loop
        # body run on the loop thread when the loop calls them.
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            reason = _blocking_reason(ctx, call)
            if reason:
                yield (
                    call,
                    f"{reason} inside @event_loop function "
                    f"`{node.name}`; the loop drives every lease "
                    "clock — hand the work to a thread or bound it "
                    "with a timeout",
                )


def _blocking_reason(ctx: ModuleContext, call: ast.Call) -> str:
    target = ctx.call_target(call)
    if target == "time.sleep":
        return "time.sleep() blocks"
    if target == "open":
        return "file IO (open) blocks"
    if isinstance(call.func, ast.Attribute):
        attr = call.func.attr
        if attr in _BLOCKING_ATTRS:
            return f"socket .{attr}() blocks"
        if (
            attr == "get"
            and not call.args
            and not any(kw.arg == "timeout" for kw in call.keywords)
        ):
            return "queue .get() without timeout= blocks forever"
    return ""


@rule(
    "RC503",
    "thread-daemon-explicit",
    "threading.Thread(...) without an explicit daemon= flag",
    scope=_FARM,
)
def thread_daemon_explicit(
    ctx: ModuleContext,
) -> Iterator[Tuple[Location, str]]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        if ctx.call_target(node) != "threading.Thread":
            continue
        if any(kw.arg == "daemon" for kw in node.keywords):
            continue
        yield (
            node,
            "threading.Thread(...) without explicit daemon=; shutdown "
            "behaviour must be a decision, not an inheritance",
        )


@rule(
    "RC504",
    "unbounded-wait",
    ".wait()/.join() with no timeout blocks shutdown forever",
    scope=_FARM,
)
def unbounded_wait(ctx: ModuleContext) -> Iterator[Tuple[Location, str]]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        if not isinstance(node.func, ast.Attribute):
            continue
        if node.func.attr not in ("wait", "join"):
            continue
        if node.args or any(kw.arg == "timeout" for kw in node.keywords):
            continue
        yield (
            node,
            f".{node.func.attr}() without timeout=; a wedged peer "
            "would block this thread forever — every farm wait needs "
            "a deadline",
        )


@project_rule(
    "RC505",
    "lockset-race",
    "shared attribute of a thread-spawning class with empty lock-set "
    "intersection",
)
def lockset_race(
    project: ProjectContext,
) -> Iterator[Tuple[ModuleContext, Location, str]]:
    for ctx, facts in project.units:
        if not facts.thread_targets:
            continue
        declared: Set[Tuple[str, str]] = {
            (decl.cls, decl.attr) for decl in facts.guard_decls
        }
        # Names used as locks anywhere in the module: the lock objects
        # themselves are accessed bare by design.
        lock_names: Set[str] = {d.lock for d in facts.guard_decls}
        for access in facts.attr_accesses:
            lock_names.update(access.locks)

        by_attr: Dict[Tuple[str, str], List[AttrAccess]] = {}
        for access in facts.attr_accesses:
            if access.in_init:
                continue  # pre-thread construction is single-threaded
            if access.cls not in facts.thread_targets:
                continue
            if (access.cls, access.attr) in declared:
                continue  # RC501's jurisdiction
            if access.attr in lock_names:
                continue
            by_attr.setdefault((access.cls, access.attr), []).append(
                access
            )

        for (cls, attr), accesses in sorted(by_attr.items()):
            targets = facts.thread_targets[cls]
            methods = {a.method for a in accesses}
            if len(methods) < 2 or not methods & targets:
                continue
            writes = [a for a in accesses if a.is_write]
            if not writes:
                continue
            common = frozenset.intersection(
                *(a.locks for a in accesses)
            )
            if common:
                continue
            anchor = min(writes, key=lambda a: (a.line, a.col))
            thread_methods = ", ".join(sorted(methods & targets))
            yield (
                ctx,
                anchor.line,
                f"self.{attr} is written in {cls}.{anchor.method} and "
                f"touched from {len(methods)} methods (thread "
                f"target(s): {thread_methods}) with no common lock; "
                f"guard it, declare `# repro: guarded-by[{attr}]=...`, "
                "or suppress with a single-writer justification",
            )
