"""RC6xx: wire-protocol and trace-schema conformance.

The farm's NDJSON protocol and the observer's JSONL trace schema are
producer/consumer contracts whose two sides live in different modules:
``repro.farm.protocol`` builds the dicts that
``repro.farm.coordinator`` / ``repro.farm.worker`` / ``repro.cli``
dispatch on, and ``repro.obs.trace_io`` writes the events that
``repro.obs.replay`` re-derives metrics from. A key renamed on one
side is a silent runtime failure (an ignored message, a replay
mismatch); these project rules turn it into a static finding by
checking every site against a single declaration — the
``MESSAGE_KINDS`` table in ``repro.farm.protocol`` for the wire, the
writer/replayer symmetry itself for the trace.

* **RC601 message-kind-conformance** — every kind produced (a dict
  literal with ``"t": "<kind>"`` or a ``var["t"] = "<kind>"`` store)
  and every kind consumed (a ``== "<kind>"`` test on ``var["t"]`` /
  ``var.get("t")``, or an ``@consumes`` declaration) must appear in
  ``MESSAGE_KINDS``, and every declared kind must have at least one
  producer and one consumer. Exactly one table must exist.
* **RC602 message-key-agreement** — a producer literal's payload keys
  must equal the declared key set for its kind exactly; a consumer's
  constant-string key reads on a kind-tested (or ``@consumes``-
  declared) variable must stay within the union of its possible
  kinds' key sets.
* **RC603 trace-event-conformance** — JSONL event kinds written in
  ``repro.obs`` must exactly match the kinds dispatched on in
  ``repro.obs`` (writer/replayer symmetry, both directions).
* **RC604 schema-version-consistency** — ``EVENT_SCHEMA_VERSION``
  must be a member of ``SUPPORTED_SCHEMA_VERSIONS``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Set, Tuple

from repro.check.context import ModuleContext
from repro.check.facts import (
    KindTable,
    KindTest,
    ModuleFacts,
    ProjectContext,
)
from repro.check.registry import Location, project_rule

#: Modules taking part in the farm wire protocol.
_WIRE = ("repro.farm", "repro.cli")
#: Modules taking part in the JSONL trace schema.
_TRACE = ("repro.obs",)

_Unit = Tuple[ModuleContext, ModuleFacts]


def _wire_tables(
    units: List[_Unit],
) -> List[Tuple[ModuleContext, KindTable]]:
    return [
        (ctx, table)
        for ctx, facts in units
        for table in facts.kind_tables
    ]


def _has_wire_sites(facts: ModuleFacts) -> bool:
    return bool(
        facts.wire_literals or facts.kind_stores or facts.kind_tests
    )


@project_rule(
    "RC601",
    "message-kind-conformance",
    "every produced/consumed wire kind must appear in MESSAGE_KINDS, "
    "and vice versa",
)
def message_kind_conformance(
    project: ProjectContext,
) -> Iterator[Tuple[ModuleContext, Location, str]]:
    units = list(project.in_packages(*_WIRE))
    tables = _wire_tables(units)
    if not tables:
        for ctx, facts in units:
            if _has_wire_sites(facts):
                site = min(
                    facts.wire_literals
                    + facts.kind_stores
                    + facts.kind_tests,
                    key=lambda s: s.line,
                )
                yield (
                    ctx,
                    site.line,
                    "wire messages are used but no MESSAGE_KINDS "
                    "declaration table exists under repro.farm",
                )
                return
        return
    if len(tables) > 1:
        for ctx, table in tables[1:]:
            yield (
                ctx,
                table.line,
                "duplicate MESSAGE_KINDS table; the wire contract "
                "must have exactly one declaration "
                f"(first one in {tables[0][0].module})",
            )
    table_ctx, table = tables[0]
    declared = table.as_dict()

    produced: Set[str] = set()
    consumed: Set[str] = set()
    for ctx, facts in units:
        for lit in facts.wire_literals:
            produced.add(lit.kind)
            if lit.kind not in declared:
                yield (
                    ctx,
                    lit.line,
                    f'message kind "{lit.kind}" is produced but not '
                    f"declared in {table_ctx.module}.MESSAGE_KINDS",
                )
        for store in facts.kind_stores:
            produced.add(store.kind)
            if store.kind not in declared:
                yield (
                    ctx,
                    store.line,
                    f'message kind "{store.kind}" is produced '
                    "(subscript store) but not declared in "
                    f"{table_ctx.module}.MESSAGE_KINDS",
                )
        for test in facts.kind_tests:
            consumed.add(test.kind)
            if test.kind not in declared:
                yield (
                    ctx,
                    test.line,
                    f'message kind "{test.kind}" is tested for but '
                    "not declared in "
                    f"{table_ctx.module}.MESSAGE_KINDS",
                )
        for decl in facts.consumes_decls:
            for kind in decl.kinds:
                consumed.add(kind)
                if kind not in declared:
                    yield (
                        ctx,
                        decl.line,
                        f'@consumes("{kind}") declares a kind missing '
                        f"from {table_ctx.module}.MESSAGE_KINDS",
                    )

    for kind in declared:
        if kind not in produced:
            yield (
                table_ctx,
                table.line,
                f'declared message kind "{kind}" is never produced '
                "(no dict literal or subscript store builds it)",
            )
        if kind not in consumed:
            yield (
                table_ctx,
                table.line,
                f'declared message kind "{kind}" is never consumed '
                "(no kind test or @consumes handler dispatches on it)",
            )


def _consumer_kinds(
    facts: ModuleFacts, declared: Dict[str, FrozenSet[str]]
) -> Dict[Tuple[str, str], Set[str]]:
    """Possible declared kinds per ``(function, variable)`` pair."""
    kinds: Dict[Tuple[str, str], Set[str]] = {}
    for test in facts.kind_tests:
        if test.kind in declared:
            kinds.setdefault((test.func, test.var), set()).add(test.kind)
    for decl in facts.consumes_decls:
        for param in decl.params:
            key = (decl.func, param)
            if key not in kinds:
                kinds[key] = {
                    kind for kind in decl.kinds if kind in declared
                }
    return kinds


@project_rule(
    "RC602",
    "message-key-agreement",
    "producer payload keys and consumer key reads must agree with "
    "MESSAGE_KINDS",
)
def message_key_agreement(
    project: ProjectContext,
) -> Iterator[Tuple[ModuleContext, Location, str]]:
    units = list(project.in_packages(*_WIRE))
    tables = _wire_tables(units)
    if len(tables) != 1:
        return  # RC601 reports missing/duplicate tables
    table_ctx, table = tables[0]
    declared = table.as_dict()

    for ctx, facts in units:
        for lit in facts.wire_literals:
            expected = declared.get(lit.kind)
            if expected is None or lit.keys is None:
                continue
            missing = sorted(expected - lit.keys)
            extra = sorted(lit.keys - expected)
            if not missing and not extra:
                continue
            parts = []
            if missing:
                parts.append(f"missing {missing}")
            if extra:
                parts.append(f"extra {extra}")
            yield (
                ctx,
                lit.line,
                f'producer of "{lit.kind}" disagrees with '
                f"MESSAGE_KINDS[{lit.kind!r}]: {'; '.join(parts)}",
            )

        consumer_kinds = _consumer_kinds(facts, declared)
        for read in facts.key_reads:
            kinds = consumer_kinds.get((read.func, read.var))
            if not kinds:
                continue
            allowed: Set[str] = {"t"}
            for kind in kinds:
                allowed.update(declared[kind])
            if read.key not in allowed:
                kind_list = ", ".join(sorted(kinds))
                yield (
                    ctx,
                    read.line,
                    f'consumer reads key "{read.key}" from a message '
                    f"of kind {kind_list}, but no such key is "
                    "declared in MESSAGE_KINDS",
                )


@project_rule(
    "RC603",
    "trace-event-conformance",
    "JSONL trace kinds written and dispatched in repro.obs must match",
)
def trace_event_conformance(
    project: ProjectContext,
) -> Iterator[Tuple[ModuleContext, Location, str]]:
    units = list(project.in_packages(*_TRACE))
    written: Dict[str, Tuple[ModuleContext, int]] = {}
    tested: Dict[str, Tuple[ModuleContext, int]] = {}
    test_sites: List[Tuple[ModuleContext, KindTest]] = []
    for ctx, facts in units:
        for lit in facts.wire_literals:
            written.setdefault(lit.kind, (ctx, lit.line))
        for store in facts.kind_stores:
            written.setdefault(store.kind, (ctx, store.line))
        for test in facts.kind_tests:
            tested.setdefault(test.kind, (ctx, test.line))
            test_sites.append((ctx, test))
    if not written or not tested:
        return  # one side absent: not a whole-schema analysis
    for kind, (ctx, line) in sorted(written.items()):
        if kind not in tested:
            yield (
                ctx,
                line,
                f'trace event "{kind}" is written but never '
                "dispatched on by any reader (writer/replayer "
                "asymmetry)",
            )
    for kind, (ctx, line) in sorted(tested.items()):
        if kind not in written:
            yield (
                ctx,
                line,
                f'trace reader dispatches on event "{kind}" that no '
                "writer emits (writer/replayer asymmetry)",
            )


@project_rule(
    "RC604",
    "schema-version-consistency",
    "EVENT_SCHEMA_VERSION must be in SUPPORTED_SCHEMA_VERSIONS",
)
def schema_version_consistency(
    project: ProjectContext,
) -> Iterator[Tuple[ModuleContext, Location, str]]:
    units = list(project.in_packages(*_TRACE))
    supported: List[Tuple[int, ...]] = []
    for _ctx, facts in units:
        entry = facts.tuple_constants.get("SUPPORTED_SCHEMA_VERSIONS")
        if entry is not None:
            supported.append(entry[0])
    for ctx, facts in units:
        entry = facts.int_constants.get("EVENT_SCHEMA_VERSION")
        if entry is None:
            continue
        version, line = entry
        if not supported:
            yield (
                ctx,
                line,
                "EVENT_SCHEMA_VERSION is declared but no "
                "SUPPORTED_SCHEMA_VERSIONS tuple exists in repro.obs",
            )
        elif not any(version in versions for versions in supported):
            yield (
                ctx,
                line,
                f"EVENT_SCHEMA_VERSION = {version} is not a member of "
                "SUPPORTED_SCHEMA_VERSIONS "
                f"{sorted(set(supported))[0]}",
            )
