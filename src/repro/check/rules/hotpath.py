"""Hot-path allocation audit (RC2xx): keep the fast path lean.

PR 2's fast path earns its ~9x by *not allocating*: victim selection is
a tuple read off an incremental ordering, ``fresh_copy`` skips
``__init__``, and the transmission phase walks a cached active set.
Those wins erode one innocent-looking allocation at a time — a closure
captured per call, a comprehension temporary per loop iteration, an
f-string built for a log line that is never read.

Functions opt in with the :func:`repro.core.hotpath.hot_path` marker
decorator (a no-op at runtime); these rules then audit the marked
bodies. Error paths are exempt where that is sound: formatting inside a
``raise`` statement only runs when the simulation is already dead.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.check.context import ModuleContext
from repro.check.registry import rule

#: Same-chain occurrences inside one loop body before RC204 fires.
_CHAIN_THRESHOLD = 3

#: Attribute hops before a chain counts as "deep" (``a.b.c`` = 2).
_CHAIN_MIN_DEPTH = 2


def _is_hot_path_marker(decorator: ast.expr) -> bool:
    """Whether a decorator expression is the ``hot_path`` marker."""
    if isinstance(decorator, ast.Call):
        decorator = decorator.func
    if isinstance(decorator, ast.Name):
        return decorator.id == "hot_path"
    if isinstance(decorator, ast.Attribute):
        return decorator.attr == "hot_path"
    return False


def hot_functions(tree: ast.Module) -> List[ast.FunctionDef]:
    """Every function in ``tree`` carrying the ``@hot_path`` marker."""
    return [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and any(_is_hot_path_marker(d) for d in node.decorator_list)
    ]


@rule(
    "RC201",
    "hot-path-closure",
    "no nested functions or lambdas inside @hot_path functions",
)
def hot_path_closure(ctx: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
    for fn in hot_functions(ctx.tree):
        for node in ast.walk(fn):
            if node is fn:
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                kind = "lambda" if isinstance(node, ast.Lambda) else "def"
                yield node, (
                    f"{kind} inside @hot_path {fn.name}() allocates a "
                    "function object per call; hoist it to module or "
                    "class scope"
                )


def _loops_in(fn: ast.FunctionDef) -> Iterator[ast.stmt]:
    for node in ast.walk(fn):
        if isinstance(node, (ast.For, ast.While)):
            yield node


@rule(
    "RC202",
    "hot-path-loop-temporary",
    "no comprehension/generator temporaries inside loops of @hot_path "
    "functions",
)
def hot_path_loop_temporary(
    ctx: ModuleContext,
) -> Iterator[Tuple[ast.AST, str]]:
    for fn in hot_functions(ctx.tree):
        for loop in _loops_in(fn):
            # The loop's own iterable evaluates once per loop entry,
            # not per iteration — exempt that whole subtree.
            iter_nodes = {
                id(sub)
                for sub in ast.walk(getattr(loop, "iter", loop))
            } if isinstance(loop, ast.For) else set()
            for node in ast.walk(loop):
                if id(node) in iter_nodes:
                    continue
                if isinstance(node, (ast.ListComp, ast.SetComp,
                                     ast.DictComp, ast.GeneratorExp)):
                    yield node, (
                        f"comprehension inside a loop of @hot_path "
                        f"{fn.name}() builds a fresh container every "
                        "iteration; hoist or accumulate imperatively"
                    )


def _nodes_inside_raise(fn: ast.FunctionDef) -> Set[int]:
    """ids of AST nodes that sit inside a ``raise`` statement."""
    inside: Set[int] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Raise):
            for sub in ast.walk(node):
                inside.add(id(sub))
    return inside


@rule(
    "RC203",
    "hot-path-format",
    "no string formatting on the hot path (except inside raise)",
)
def hot_path_format(ctx: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
    for fn in hot_functions(ctx.tree):
        exempt = _nodes_inside_raise(fn)
        for node in ast.walk(fn):
            if id(node) in exempt:
                continue
            if isinstance(node, ast.JoinedStr):
                yield node, (
                    f"f-string in @hot_path {fn.name}() formats on every "
                    "call; error paths may format inside raise, "
                    "everything else must not"
                )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "format"
            ):
                yield node, (
                    f".format() in @hot_path {fn.name}(); move "
                    "formatting off the hot path"
                )
            elif (
                isinstance(node, ast.BinOp)
                and isinstance(node.op, ast.Mod)
                and isinstance(node.left, ast.Constant)
                and isinstance(node.left.value, str)
            ):
                yield node, (
                    f"%-formatting in @hot_path {fn.name}(); move "
                    "formatting off the hot path"
                )


def _attribute_chain(node: ast.Attribute) -> Tuple[str, int, str]:
    """(chain text, attribute hops, root name) of a pure dotted chain.

    Returns ``("", 0, "")`` for chains rooted in calls/subscripts,
    which cannot be safely hoisted.
    """
    parts: List[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return "", 0, ""
    parts.append(current.id)
    parts.reverse()
    return ".".join(parts), len(parts) - 1, parts[0]


def _assigned_names(loop: ast.stmt) -> Set[str]:
    """Names (re)bound anywhere inside the loop, including its target."""
    names: Set[str] = set()
    for node in ast.walk(loop):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            names.add(node.id)
    return names


@rule(
    "RC204",
    "hot-path-attr-in-loop",
    "hoist attribute chains repeated >= 3 times inside a hot loop",
)
def hot_path_attr_in_loop(
    ctx: ModuleContext,
) -> Iterator[Tuple[ast.AST, str]]:
    for fn in hot_functions(ctx.tree):
        seen_loops: Set[int] = set()
        for loop in _loops_in(fn):
            # Nested loops: only audit the outermost occurrence so one
            # hot chain is reported once, at the widest hoisting scope.
            if id(loop) in seen_loops:
                continue
            for sub in ast.walk(loop):
                if sub is not loop and isinstance(sub, (ast.For, ast.While)):
                    seen_loops.add(id(sub))
            rebound = _assigned_names(loop)
            # Count only *maximal* chains: for x.y.z, the inner x.y node
            # is a sub-expression of the same lookup, not a second one.
            inner = {
                id(node.value)
                for node in ast.walk(loop)
                if isinstance(node, ast.Attribute)
            }
            first: Dict[str, ast.Attribute] = {}
            counts: Dict[str, int] = {}
            for node in ast.walk(loop):
                if not isinstance(node, ast.Attribute):
                    continue
                if id(node) in inner or not isinstance(node.ctx, ast.Load):
                    continue
                chain, depth, root = _attribute_chain(node)
                if depth < _CHAIN_MIN_DEPTH or root in rebound:
                    continue
                counts[chain] = counts.get(chain, 0) + 1
                first.setdefault(chain, node)
            for chain, count in counts.items():
                if count >= _CHAIN_THRESHOLD:
                    yield first[chain], (
                        f"attribute chain {chain} looked up {count}x "
                        f"inside a loop of @hot_path {fn.name}(); bind "
                        "it to a local before the loop"
                    )
