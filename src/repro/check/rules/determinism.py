"""Determinism lint (RC1xx): the byte-identical-replay contract.

Scope: the simulation packages — ``repro.core``, ``repro.policies``,
``repro.traffic``, ``repro.opt``. Everything these modules compute must
be a pure function of ``(config, trace, seed)``: the sweep engine
replays cells across processes, the cache replays them across runs, and
the resilience layer replays them across crashes, all asserting
byte-identical output. One wall-clock read or one unseeded RNG breaks
all three replays at once.

The repo's seed-derivation convention (CONTRIBUTING.md): every
stochastic component takes an explicit ``seed`` parameter and threads
it through ``numpy.random.default_rng(seed)``. The RNG rules therefore
allow any *seeded* generator construction and flag the global-state and
unseeded forms.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.check.context import ModuleContext
from repro.check.registry import rule

#: Packages whose output must be a pure function of (config, trace, seed).
DETERMINISTIC_PACKAGES = (
    "repro.core",
    "repro.policies",
    "repro.traffic",
    "repro.opt",
)

_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

_ENTROPY = {
    "os.urandom",
    "os.getrandom",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.token_urlsafe",
    "secrets.randbits",
    "secrets.randbelow",
    "secrets.choice",
    "uuid.uuid1",
    "uuid.uuid4",
}

#: stdlib ``random`` module-level functions (hidden global Mersenne state).
_GLOBAL_RANDOM = {
    "random.random",
    "random.seed",
    "random.randint",
    "random.randrange",
    "random.choice",
    "random.choices",
    "random.sample",
    "random.shuffle",
    "random.uniform",
    "random.gauss",
    "random.normalvariate",
    "random.expovariate",
    "random.betavariate",
    "random.getrandbits",
}

#: numpy legacy global-state API (``np.random.seed`` and friends).
_GLOBAL_NUMPY = {
    "numpy.random.seed",
    "numpy.random.random",
    "numpy.random.rand",
    "numpy.random.randn",
    "numpy.random.randint",
    "numpy.random.random_sample",
    "numpy.random.choice",
    "numpy.random.shuffle",
    "numpy.random.permutation",
    "numpy.random.uniform",
    "numpy.random.normal",
    "numpy.random.poisson",
    "numpy.random.exponential",
    "numpy.random.binomial",
}

#: Constructors that are fine *with* a seed and flagged without one.
_SEEDED_CONSTRUCTORS = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "random.Random",
    "random.SystemRandom",  # never seedable -> always flagged below
}


@rule(
    "RC101",
    "wall-clock",
    "no wall-clock or timer reads inside deterministic modules",
    scope=DETERMINISTIC_PACKAGES,
)
def wall_clock(ctx: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            target = ctx.call_target(node)
            if target in _WALL_CLOCK:
                yield node, (
                    f"{target}() reads the wall clock; simulation state "
                    "must be a pure function of (config, trace, seed)"
                )


@rule(
    "RC102",
    "entropy-source",
    "no OS entropy (urandom/secrets/uuid4) inside deterministic modules",
    scope=DETERMINISTIC_PACKAGES,
)
def entropy_source(ctx: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            target = ctx.call_target(node)
            if target in _ENTROPY:
                yield node, (
                    f"{target}() draws OS entropy, which no seed can "
                    "replay; derive randomness from the run's seed"
                )


def _is_seeded(call: ast.Call) -> bool:
    """Whether an RNG constructor receives any seed-ish argument."""
    if call.args:
        return True
    return any(kw.arg in ("seed", "x") or kw.arg is None for kw in call.keywords)


@rule(
    "RC103",
    "unseeded-rng",
    "RNGs must be constructed from an explicit seed; no global RNG state",
    scope=DETERMINISTIC_PACKAGES,
)
def unseeded_rng(ctx: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        target = ctx.call_target(node)
        if target is None:
            continue
        if target in _GLOBAL_RANDOM:
            yield node, (
                f"{target}() uses the interpreter-global RNG; construct "
                "numpy.random.default_rng(seed) and thread it through"
            )
        elif target in _GLOBAL_NUMPY:
            yield node, (
                f"{target}() mutates numpy's global RNG state; construct "
                "numpy.random.default_rng(seed) and thread it through"
            )
        elif target == "random.SystemRandom":
            yield node, (
                "random.SystemRandom draws OS entropy and cannot be "
                "seeded; use numpy.random.default_rng(seed)"
            )
        elif target in _SEEDED_CONSTRUCTORS and not _is_seeded(node):
            yield node, (
                f"{target}() without a seed is nondeterministic; pass "
                "the seed explicitly so it flows from the caller"
            )


def _is_set_expr(ctx: ModuleContext, node: ast.expr) -> bool:
    """Whether ``node`` evaluates to a freshly-built set/frozenset."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return ctx.call_target(node) in ("set", "frozenset")
    return False


@rule(
    "RC104",
    "unordered-iteration",
    "no iteration over sets (hash order); wrap in sorted(...)",
    scope=DETERMINISTIC_PACKAGES,
)
def unordered_iteration(ctx: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
    message = (
        "iterating a set visits elements in hash order, which is not "
        "stable across processes; wrap it in sorted(...)"
    )
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.For) and _is_set_expr(ctx, node.iter):
            yield node.iter, message
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for generator in node.generators:
                if _is_set_expr(ctx, generator.iter):
                    yield generator.iter, message
        elif isinstance(node, ast.Call):
            target = ctx.call_target(node)
            if (
                target in ("list", "tuple")
                and len(node.args) == 1
                and _is_set_expr(ctx, node.args[0])
            ):
                yield node, (
                    f"{target}(set(...)) materializes hash order; use "
                    "sorted(...) for a stable sequence"
                )


def _uses_id(ctx: ModuleContext, node: ast.expr) -> Optional[ast.AST]:
    """The first ``id(...)`` call (or bare ``id`` reference) in ``node``."""
    if isinstance(node, ast.Name) and node.id == "id":
        return node
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and ctx.call_target(sub) == "id":
            return sub
    return None


@rule(
    "RC105",
    "id-keyed-order",
    "no id()-keyed sorts; object addresses differ across processes",
    scope=DETERMINISTIC_PACKAGES,
)
def id_keyed_order(ctx: ModuleContext) -> Iterator[Tuple[ast.AST, str]]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        target = ctx.call_target(node)
        is_sort_call = target in ("sorted", "min", "max") or (
            isinstance(node.func, ast.Attribute) and node.func.attr == "sort"
        )
        if not is_sort_call:
            continue
        for kw in node.keywords:
            if kw.arg != "key":
                continue
            hit = _uses_id(ctx, kw.value)
            if hit is not None:
                yield hit, (
                    "ordering keyed on id() depends on allocation "
                    "addresses and differs between processes; key on "
                    "stable packet/port fields (e.g. seq) instead"
                )
