"""Policy-API conformance (RC3xx): policies read views, return decisions.

Scope: ``repro.policies``. The engine/policy contract (docs/POLICIES.md,
CONTRIBUTING.md) is strict: a policy receives a read-only
:class:`~repro.core.switch.SwitchView` plus the arriving
:class:`~repro.core.packet.Packet` template and must express *all*
effects through the returned :class:`~repro.core.decisions.Decision`.
The engine validates and applies; a policy that pokes switch internals
or mutates what it was handed silently corrupts competitive ratios —
the exact failure class the differential suites exist to catch, moved
here to before-first-run.

``self``/``cls`` access stays legal (policies keep private helpers and
seeded RNG state of their own), as do references to classes defined in
the same module (naive-selector staticmethods are called via the class
name).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set, Tuple

from repro.check.context import ModuleContext
from repro.check.registry import rule

POLICY_PACKAGES = ("repro.policies",)

#: Engine methods that mutate simulation state. A policy calling one of
#: these on anything it did not construct itself is rewriting history.
_ENGINE_MUTATORS = {
    "admit",
    "drop_tail",
    "process",
    "clear",
    "flush",
    "run_slot",
    "offer",
    "apply",
    "arrival_phase",
    "transmission_phase",
    "fast_forward",
    "attach_observer",
    "record_arrival",
    "record_drop",
    "record_accept",
    "record_push_out",
}


def _local_classes(tree: ast.Module) -> Set[str]:
    return {
        node.name
        for node in ast.walk(tree)
        if isinstance(node, ast.ClassDef)
    }


def _base_name(node: ast.expr) -> Optional[str]:
    """The root Name of an attribute access, or None for call results."""
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_self_like(node: ast.expr, local_classes: Set[str]) -> bool:
    """self/cls, a same-module class, or super() — all own-state access."""
    name = _base_name(node)
    if name is not None:
        return name in ("self", "cls") or name in local_classes
    if isinstance(node, ast.Call):
        return (
            isinstance(node.func, ast.Name) and node.func.id == "super"
        )
    return False


@rule(
    "RC301",
    "policy-private-access",
    "policies may not touch _private attributes of engine objects",
    scope=POLICY_PACKAGES,
)
def policy_private_access(
    ctx: ModuleContext,
) -> Iterator[Tuple[ast.AST, str]]:
    local = _local_classes(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Attribute):
            continue
        attr = node.attr
        if not attr.startswith("_") or attr.startswith("__"):
            continue
        if _is_self_like(node.value, local):
            continue
        yield node, (
            f"access to private attribute .{attr} bypasses the public "
            "SwitchView surface; policies must base decisions on "
            "observable state only"
        )


@rule(
    "RC302",
    "policy-foreign-mutation",
    "policies may not assign to attributes of objects they were handed",
    scope=POLICY_PACKAGES,
)
def policy_foreign_mutation(
    ctx: ModuleContext,
) -> Iterator[Tuple[ast.AST, str]]:
    local = _local_classes(ctx.tree)

    def offending(target: ast.expr) -> Optional[ast.Attribute]:
        if isinstance(target, ast.Attribute) and not _is_self_like(
            target.value, local
        ):
            return target
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                hit = offending(element)
                if hit is not None:
                    return hit
        return None

    for node in ast.walk(ctx.tree):
        targets: Tuple[ast.expr, ...]
        if isinstance(node, ast.Assign):
            targets = tuple(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = (node.target,)
        elif isinstance(node, ast.Delete):
            targets = tuple(node.targets)
        else:
            continue
        for target in targets:
            hit = offending(target)
            if hit is not None:
                yield hit, (
                    f"assignment to .{hit.attr} mutates an object the "
                    "policy does not own (packets and snapshots are "
                    "frozen; the view is read-only); express effects "
                    "through the returned Decision"
                )


@rule(
    "RC303",
    "policy-engine-mutator",
    "policies may not call engine mutators (admit/drop_tail/process/...)",
    scope=POLICY_PACKAGES,
)
def policy_engine_mutator(
    ctx: ModuleContext,
) -> Iterator[Tuple[ast.AST, str]]:
    local = _local_classes(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr not in _ENGINE_MUTATORS:
            continue
        if _is_self_like(func.value, local):
            continue
        yield node, (
            f".{func.attr}() mutates engine state; the switch applies "
            "decisions, policies only return them"
        )
