"""Findings and reports produced by ``repro check``.

A :class:`Finding` is one rule violation pinned to a file and line; a
:class:`CheckReport` is the outcome of a whole run — the ordered finding
list plus scan statistics — and knows how to render itself for humans
(``path:line:col CODE message``, grep-friendly) and as versioned JSON
(schema below, consumed by the CI artifact upload and the golden-corpus
tests).

JSON schema (``schema`` = 2)::

    {
      "schema": 2,
      "files_scanned": <int>,
      "suppressed": <int>,
      "findings": [
        {"code": "RC101", "rule": "wall-clock", "path": "src/...",
         "line": 12, "col": 4, "scope": "module", "message": "..."},
        ...
      ]
    }

Schema history: v1 (PR 5) had no ``scope`` field — every rule was
per-module. v2 (this PR) adds ``scope: "module" | "project"`` to each
finding; ``project`` marks findings from cross-module rules (RC5xx
lock-set analysis, RC6xx wire conformance) whose evidence spans files.
All v1 fields are unchanged, so v1 consumers that ignore unknown keys
keep working.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List

#: Version tag of the JSON output schema.
REPORT_SCHEMA_VERSION = 2


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at a specific source location.

    ``line`` is 1-based (as in tracebacks and editors); ``col`` is the
    0-based column offset reported by :mod:`ast`.
    """

    code: str
    rule: str
    path: str
    line: int
    col: int
    message: str
    #: ``"module"`` for per-file rules, ``"project"`` for cross-module
    #: rules whose evidence spans several files (JSON schema v2).
    scope: str = "module"

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.code)

    def format(self) -> str:
        """Grep-friendly one-liner: ``path:line:col CODE message``."""
        return f"{self.path}:{self.line}:{self.col} {self.code} {self.message}"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "scope": self.scope,
            "message": self.message,
        }


@dataclass
class CheckReport:
    """The result of one analyzer run over a set of files."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0

    @property
    def clean(self) -> bool:
        """Whether the run produced zero (unsuppressed) findings."""
        return not self.findings

    def exit_code(self) -> int:
        """Process exit status: 0 clean, 1 findings present."""
        return 0 if self.clean else 1

    def sorted(self) -> "CheckReport":
        """Self, with findings ordered by (path, line, col, code)."""
        self.findings.sort(key=Finding.sort_key)
        return self

    def summary(self) -> str:
        noun = "finding" if len(self.findings) == 1 else "findings"
        return (
            f"{len(self.findings)} {noun} in {self.files_scanned} files "
            f"({self.suppressed} suppressed)"
        )

    def format_human(self) -> str:
        """Findings one per line, then the summary line."""
        lines = [finding.format() for finding in self.findings]
        lines.append(f"# {self.summary()}")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema": REPORT_SCHEMA_VERSION,
            "files_scanned": self.files_scanned,
            "suppressed": self.suppressed,
            "findings": [finding.as_dict() for finding in self.findings],
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)
