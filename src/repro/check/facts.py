"""Phase-1 fact collection for project-scope (cross-module) rules.

Module rules see one file at a time; the RC5xx/RC6xx families need to
relate *sites in different files* — a dict literal produced in
``repro.farm.protocol`` against a ``message.get("t") == ...`` test in
``repro.farm.coordinator``, or an attribute written from a thread
target in one method and read bare in another. This module extracts
those per-module facts into plain frozen records
(:func:`collect_facts`), and :class:`ProjectContext` holds the merged
table that phase 2's project rules query.

Facts are deliberately shallow — syntactic sites plus just enough
context (enclosing class/function, the lock set held at the access,
import-resolved call targets) for the rules to be useful without
simulating execution. The collectors here are the single source of
truth for what the annotations mean:

* lock context: an access is "under L" when it is textually inside
  ``with self.L:`` in the *same* function, or the enclosing function is
  decorated ``@guarded_by("L")``. Entering a nested ``def`` clears the
  lock set — closures outlive the ``with`` block they were defined in.
* the class-body pragma ``# repro: guarded-by[_attr]=_lock`` declares
  which lock guards which attribute (parsed here into
  :class:`GuardDecl`).
* wire facts: dict literals with a ``"t": "<kind>"`` entry are
  producers; ``var["t"] == "kind"`` / ``var.get("t") == "kind"``
  comparisons (including through a single local alias like
  ``kind = message.get("t")``) are consumer-side kind tests; string
  subscripts/`.get`/`.pop` on the same variables are key reads.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.check.context import ModuleContext

_GUARDED_BY_PRAGMA = re.compile(
    r"#\s*repro:\s*guarded-by\[(\w+)\]\s*=\s*(\w+)"
)

#: Decorator names recognized by their final dotted segment, so both
#: ``@guarded_by("x")`` and ``@concurrency.guarded_by("x")`` match.
_GUARDED_BY_NAMES = ("guarded_by",)
_EVENT_LOOP_NAMES = ("event_loop",)
_CONSUMES_NAMES = ("consumes",)

#: The single declaration table RC601/RC602 check wire sites against.
KIND_TABLE_NAME = "MESSAGE_KINDS"

#: The NDJSON/JSONL discriminator key ("t" on both the farm wire
#: protocol and the repro.obs trace schema).
WIRE_KIND_KEY = "t"


# ----------------------------------------------------------------------
# Fact records
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AttrAccess:
    """One ``self.<attr>`` load or store inside a class method."""

    cls: str
    #: Root method name (closure accesses attribute to the outermost
    #: enclosing method — that is the thread the code runs on).
    method: str
    attr: str
    is_write: bool
    #: Lock names held at the access site (``with self.L:`` blocks in
    #: the same function plus an enclosing ``@guarded_by`` declaration).
    locks: FrozenSet[str]
    line: int
    col: int
    in_init: bool


@dataclass(frozen=True)
class GuardDecl:
    """A ``# repro: guarded-by[attr]=_lock`` class-body pragma."""

    cls: str
    attr: str
    lock: str
    line: int


@dataclass(frozen=True)
class ThreadSite:
    """A ``threading.Thread(...)`` construction site."""

    cls: str
    method: str
    #: Method name for ``target=self.<m>`` (``""`` otherwise).
    target_method: str
    has_daemon: bool
    line: int
    col: int


@dataclass(frozen=True)
class WireLiteral:
    """A dict literal carrying ``"t": "<kind>"`` (a message producer)."""

    func: str
    kind: str
    #: Payload keys beside ``"t"``; ``None`` when not statically known
    #: (non-constant key or ``**`` splat) — key checks then skip it.
    keys: Optional[FrozenSet[str]]
    line: int
    col: int


@dataclass(frozen=True)
class KindStore:
    """A ``var["t"] = "<kind>"`` subscript store (producer, unknown keys)."""

    func: str
    kind: str
    line: int
    col: int


@dataclass(frozen=True)
class KindTest:
    """A comparison of a kind expression against a string constant."""

    func: str
    var: str
    kind: str
    line: int
    col: int


@dataclass(frozen=True)
class KeyRead:
    """A constant-string key access on a local dict variable."""

    func: str
    var: str
    key: str
    line: int
    col: int


@dataclass(frozen=True)
class ConsumesDecl:
    """An ``@consumes("kind", ...)`` handler declaration."""

    func: str
    kinds: Tuple[str, ...]
    #: The handler's parameter names — key-read checking applies only
    #: to reads on these variables (a handler may touch other dicts).
    params: Tuple[str, ...]
    line: int
    col: int


@dataclass(frozen=True)
class KindTable:
    """A module-level ``MESSAGE_KINDS = {...}`` declaration table."""

    mapping: Tuple[Tuple[str, FrozenSet[str]], ...]
    line: int
    col: int

    def as_dict(self) -> Dict[str, FrozenSet[str]]:
        return dict(self.mapping)


@dataclass
class ModuleFacts:
    """Everything phase 1 extracted from one module."""

    attr_accesses: List[AttrAccess] = field(default_factory=list)
    guard_decls: List[GuardDecl] = field(default_factory=list)
    thread_sites: List[ThreadSite] = field(default_factory=list)
    #: Per class: method names registered as ``target=self.<m>``.
    thread_targets: Dict[str, Set[str]] = field(default_factory=dict)
    wire_literals: List[WireLiteral] = field(default_factory=list)
    kind_stores: List[KindStore] = field(default_factory=list)
    kind_tests: List[KindTest] = field(default_factory=list)
    key_reads: List[KeyRead] = field(default_factory=list)
    consumes_decls: List[ConsumesDecl] = field(default_factory=list)
    kind_tables: List[KindTable] = field(default_factory=list)
    #: Module-level ``NAME = <int>`` constants (name -> (value, line)).
    int_constants: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: Module-level ``NAME = (<int>, ...)`` constants.
    tuple_constants: Dict[str, Tuple[Tuple[int, ...], int]] = field(
        default_factory=dict
    )


# ----------------------------------------------------------------------
# Decorator recognition (syntactic, like the @hot_path rules)
# ----------------------------------------------------------------------


def _decorator_tail(ctx: ModuleContext, node: ast.expr) -> str:
    """Final dotted segment of a decorator expression (``""`` if none)."""
    target = node.func if isinstance(node, ast.Call) else node
    dotted = ctx.dotted_name(target)
    if dotted is None:
        return ""
    return dotted.rsplit(".", 1)[-1]


def guarded_by_lock(
    ctx: ModuleContext, fn: ast.FunctionDef | ast.AsyncFunctionDef
) -> str:
    """Lock named by an ``@guarded_by("L")`` decorator (``""`` if none)."""
    for dec in fn.decorator_list:
        if _decorator_tail(ctx, dec) in _GUARDED_BY_NAMES:
            if isinstance(dec, ast.Call) and dec.args:
                arg = dec.args[0]
                if isinstance(arg, ast.Constant) and isinstance(
                    arg.value, str
                ):
                    return arg.value
    return ""


def is_event_loop_marked(
    ctx: ModuleContext, fn: ast.FunctionDef | ast.AsyncFunctionDef
) -> bool:
    """Whether ``fn`` carries the ``@event_loop`` marker."""
    return any(
        _decorator_tail(ctx, dec) in _EVENT_LOOP_NAMES
        for dec in fn.decorator_list
    )


def consumes_kinds(
    ctx: ModuleContext, fn: ast.FunctionDef | ast.AsyncFunctionDef
) -> Tuple[str, ...]:
    """Kinds declared by an ``@consumes(...)`` decorator (``()`` if none)."""
    for dec in fn.decorator_list:
        if _decorator_tail(ctx, dec) in _CONSUMES_NAMES:
            if isinstance(dec, ast.Call):
                kinds = tuple(
                    arg.value
                    for arg in dec.args
                    if isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str)
                )
                if kinds:
                    return kinds
    return ()


# ----------------------------------------------------------------------
# Expression helpers shared with the rule modules
# ----------------------------------------------------------------------


def _self_attr(node: ast.expr) -> str:
    """``self.<attr>`` -> attr name; anything else -> ``""``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return ""


def _const_str(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def kind_expr_var(node: ast.expr) -> str:
    """Variable name when ``node`` reads the wire discriminator key.

    Matches ``var["t"]`` and ``var.get("t")`` / ``var.get("t", d)`` on
    a plain local name; returns ``""`` otherwise.
    """
    if isinstance(node, ast.Subscript) and isinstance(
        node.value, ast.Name
    ):
        if _const_str(node.slice) == WIRE_KIND_KEY:
            return node.value.id
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "get"
        and isinstance(node.func.value, ast.Name)
        and node.args
        and not node.keywords
        and _const_str(node.args[0]) == WIRE_KIND_KEY
    ):
        return node.func.value.id
    return ""


def dict_literal_kind(node: ast.Dict) -> Optional[str]:
    """The ``"t"`` value of a wire dict literal, if constant."""
    for key, value in zip(node.keys, node.values):
        if key is not None and _const_str(key) == WIRE_KIND_KEY:
            return _const_str(value)
    return None


def dict_literal_keys(node: ast.Dict) -> Optional[FrozenSet[str]]:
    """Non-``"t"`` keys of a dict literal; ``None`` when not static."""
    keys: Set[str] = set()
    for key in node.keys:
        if key is None:  # ** splat
            return None
        text = _const_str(key)
        if text is None:
            return None
        if text != WIRE_KIND_KEY:
            keys.add(text)
    return frozenset(keys)


# ----------------------------------------------------------------------
# The collector
# ----------------------------------------------------------------------


class _Collector:
    """Single recursive pass gathering every fact kind at once."""

    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx
        self.facts = ModuleFacts()
        self._class_stack: List[str] = []
        self._func_stack: List[str] = []
        self._lock_stack: List[str] = []
        #: Per-function ``alias -> var`` map for ``k = msg.get("t")``.
        self._kind_aliases: Dict[str, str] = {}

    # -- naming helpers ------------------------------------------------

    @property
    def _cls(self) -> str:
        return self._class_stack[-1] if self._class_stack else ""

    @property
    def _root_method(self) -> str:
        return self._func_stack[0] if self._func_stack else ""

    @property
    def _qualname(self) -> str:
        parts = self._class_stack + self._func_stack
        return ".".join(parts) if parts else "<module>"

    # -- traversal -----------------------------------------------------

    def run(self) -> ModuleFacts:
        self._collect_guard_pragmas()
        self._collect_module_constants()
        for node in self.ctx.tree.body:
            self._visit(node)
        return self.facts

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.ClassDef):
            self._class_stack.append(node.name)
            saved_funcs, self._func_stack = self._func_stack, []
            saved_locks, self._lock_stack = self._lock_stack, []
            for child in node.body:
                self._visit(child)
            self._class_stack.pop()
            self._func_stack = saved_funcs
            self._lock_stack = saved_locks
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._visit_function(node)
            return
        if isinstance(node, ast.With):
            self._visit_with(node)
            return
        self._visit_expr_facts(node)
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        for dec in node.decorator_list:
            self._visit(dec)
        self._func_stack.append(node.name)
        # Closures outlive the `with` block they were defined inside;
        # only an explicit @guarded_by carries a lock across a def.
        saved_locks = self._lock_stack
        saved_aliases = self._kind_aliases
        self._kind_aliases = dict(saved_aliases)
        lock = guarded_by_lock(self.ctx, node)
        self._lock_stack = [lock] if lock else []
        kinds = consumes_kinds(self.ctx, node)
        if kinds:
            arg_nodes = (
                list(node.args.posonlyargs)
                + list(node.args.args)
                + list(node.args.kwonlyargs)
            )
            self.facts.consumes_decls.append(
                ConsumesDecl(
                    func=self._qualname,
                    kinds=kinds,
                    params=tuple(a.arg for a in arg_nodes),
                    line=node.lineno,
                    col=node.col_offset,
                )
            )
        self._prescan_kind_aliases(node)
        for child in node.body:
            self._visit(child)
        self._func_stack.pop()
        self._lock_stack = saved_locks
        self._kind_aliases = saved_aliases

    def _visit_with(self, node: ast.With) -> None:
        held: List[str] = []
        for item in node.items:
            self._visit(item.context_expr)
            if item.optional_vars is not None:
                self._visit(item.optional_vars)
            lock = _self_attr(item.context_expr)
            if lock:
                held.append(lock)
                self._lock_stack.append(lock)
        for child in node.body:
            self._visit(child)
        for _ in held:
            self._lock_stack.pop()

    def _prescan_kind_aliases(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        """Record ``alias = msg.get("t")`` assignments in this function.

        Only direct statements of the function body tree are scanned
        (nested defs re-scan their own bodies on entry), and only plain
        single-name targets are tracked.
        """
        for stmt in fn.body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Name):
                        var = kind_expr_var(node.value)
                        if var:
                            self._kind_aliases[target.id] = var

    # -- per-node facts ------------------------------------------------

    def _visit_expr_facts(self, node: ast.AST) -> None:
        if isinstance(node, ast.Attribute):
            self._fact_attr_access(node)
        elif isinstance(node, ast.Call):
            self._fact_thread_site(node)
            self._fact_key_read_call(node)
        elif isinstance(node, ast.Dict):
            self._fact_wire_literal(node)
        elif isinstance(node, ast.Compare):
            self._fact_kind_test(node)
        elif isinstance(node, ast.Subscript):
            self._fact_subscript(node)
        elif isinstance(node, ast.Assign):
            self._fact_kind_store(node)

    def _fact_attr_access(self, node: ast.Attribute) -> None:
        attr = _self_attr(node)
        if not attr or not self._cls or not self._func_stack:
            return
        self.facts.attr_accesses.append(
            AttrAccess(
                cls=self._cls,
                method=self._root_method,
                attr=attr,
                is_write=isinstance(node.ctx, (ast.Store, ast.Del)),
                locks=frozenset(self._lock_stack),
                line=node.lineno,
                col=node.col_offset,
                in_init=self._root_method == "__init__",
            )
        )

    def _fact_thread_site(self, node: ast.Call) -> None:
        if self.ctx.call_target(node) != "threading.Thread":
            return
        target_method = ""
        has_daemon = False
        for kw in node.keywords:
            if kw.arg == "daemon":
                has_daemon = True
            elif kw.arg == "target":
                target_method = _self_attr(kw.value)
        self.facts.thread_sites.append(
            ThreadSite(
                cls=self._cls,
                method=self._root_method,
                target_method=target_method,
                has_daemon=has_daemon,
                line=node.lineno,
                col=node.col_offset,
            )
        )
        if self._cls and target_method:
            self.facts.thread_targets.setdefault(self._cls, set()).add(
                target_method
            )

    def _fact_wire_literal(self, node: ast.Dict) -> None:
        kind = dict_literal_kind(node)
        if kind is None:
            return
        self.facts.wire_literals.append(
            WireLiteral(
                func=self._qualname,
                kind=kind,
                keys=dict_literal_keys(node),
                line=node.lineno,
                col=node.col_offset,
            )
        )

    def _fact_kind_store(self, node: ast.Assign) -> None:
        if len(node.targets) != 1:
            return
        target = node.targets[0]
        if not (
            isinstance(target, ast.Subscript)
            and _const_str(target.slice) == WIRE_KIND_KEY
        ):
            return
        kind = _const_str(node.value)
        if kind is None:
            return
        self.facts.kind_stores.append(
            KindStore(
                func=self._qualname,
                kind=kind,
                line=node.lineno,
                col=node.col_offset,
            )
        )

    def _fact_kind_test(self, node: ast.Compare) -> None:
        if len(node.ops) != 1:
            return
        var = kind_expr_var(node.left)
        if not var and isinstance(node.left, ast.Name):
            var = self._kind_aliases.get(node.left.id, "")
        if not var:
            return
        op = node.ops[0]
        comparator = node.comparators[0]
        kinds: List[str] = []
        if isinstance(op, (ast.Eq, ast.NotEq)):
            text = _const_str(comparator)
            if text is not None:
                kinds.append(text)
        elif isinstance(op, (ast.In, ast.NotIn)) and isinstance(
            comparator, (ast.Tuple, ast.List, ast.Set)
        ):
            for elt in comparator.elts:
                text = _const_str(elt)
                if text is not None:
                    kinds.append(text)
        for kind in kinds:
            self.facts.kind_tests.append(
                KindTest(
                    func=self._qualname,
                    var=var,
                    kind=kind,
                    line=node.lineno,
                    col=node.col_offset,
                )
            )

    def _fact_subscript(self, node: ast.Subscript) -> None:
        if not isinstance(node.ctx, ast.Load):
            return
        if not isinstance(node.value, ast.Name):
            return
        key = _const_str(node.slice)
        if key is None:
            return
        self.facts.key_reads.append(
            KeyRead(
                func=self._qualname,
                var=node.value.id,
                key=key,
                line=node.lineno,
                col=node.col_offset,
            )
        )

    def _fact_key_read_call(self, node: ast.Call) -> None:
        if not (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in ("get", "pop")
            and isinstance(node.func.value, ast.Name)
            and node.args
        ):
            return
        key = _const_str(node.args[0])
        if key is None:
            return
        self.facts.key_reads.append(
            KeyRead(
                func=self._qualname,
                var=node.func.value.id,
                key=key,
                line=node.lineno,
                col=node.col_offset,
            )
        )

    # -- module-level scans --------------------------------------------

    def _collect_guard_pragmas(self) -> None:
        spans: List[Tuple[str, int, int]] = []
        for node in ast.walk(self.ctx.tree):
            if isinstance(node, ast.ClassDef):
                end = getattr(node, "end_lineno", node.lineno) or node.lineno
                spans.append((node.name, node.lineno, end))
        for lineno, line in enumerate(self.ctx.lines, start=1):
            match = _GUARDED_BY_PRAGMA.search(line)
            if not match:
                continue
            owner = ""
            best_span = -1
            for name, start, end in spans:
                if start <= lineno <= end and start > best_span:
                    owner, best_span = name, start
            self.facts.guard_decls.append(
                GuardDecl(
                    cls=owner,
                    attr=match.group(1),
                    lock=match.group(2),
                    line=lineno,
                )
            )

    def _collect_module_constants(self) -> None:
        for node in self.ctx.tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None or len(targets) != 1:
                continue
            target = targets[0]
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            if isinstance(value, ast.Constant) and isinstance(
                value.value, int
            ) and not isinstance(value.value, bool):
                self.facts.int_constants[name] = (value.value, node.lineno)
            elif isinstance(value, (ast.Tuple, ast.List)):
                ints: List[int] = []
                for elt in value.elts:
                    if isinstance(elt, ast.Constant) and isinstance(
                        elt.value, int
                    ) and not isinstance(elt.value, bool):
                        ints.append(elt.value)
                    else:
                        break
                else:
                    self.facts.tuple_constants[name] = (
                        tuple(ints),
                        node.lineno,
                    )
            if name == KIND_TABLE_NAME and isinstance(value, ast.Dict):
                table = self._parse_kind_table(value)
                if table is not None:
                    self.facts.kind_tables.append(
                        KindTable(
                            mapping=table,
                            line=node.lineno,
                            col=node.col_offset,
                        )
                    )

    def _parse_kind_table(
        self, node: ast.Dict
    ) -> Optional[Tuple[Tuple[str, FrozenSet[str]], ...]]:
        entries: List[Tuple[str, FrozenSet[str]]] = []
        for key, value in zip(node.keys, node.values):
            if key is None:
                return None
            kind = _const_str(key)
            if kind is None:
                return None
            keys = self._parse_key_set(value)
            if keys is None:
                return None
            entries.append((kind, keys))
        return tuple(entries)

    def _parse_key_set(self, node: ast.expr) -> Optional[FrozenSet[str]]:
        if isinstance(node, ast.Call) and node.args:
            # frozenset({...}) / frozenset((...))
            return self._parse_key_set(node.args[0])
        if isinstance(node, ast.Call) and not node.args:
            return frozenset()
        if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
            keys: Set[str] = set()
            for elt in node.elts:
                text = _const_str(elt)
                if text is None:
                    return None
                keys.add(text)
            return frozenset(keys)
        return None


def collect_facts(ctx: ModuleContext) -> ModuleFacts:
    """Extract the phase-1 fact table for one parsed module."""
    return _Collector(ctx).run()


# ----------------------------------------------------------------------
# The merged, project-wide view
# ----------------------------------------------------------------------


@dataclass
class ProjectContext:
    """Phase-2 input: every analyzed module plus its collected facts."""

    units: List[Tuple[ModuleContext, ModuleFacts]] = field(
        default_factory=list
    )

    @classmethod
    def build(
        cls, contexts: Sequence[ModuleContext]
    ) -> "ProjectContext":
        return cls(units=[(ctx, collect_facts(ctx)) for ctx in contexts])

    def in_packages(
        self, *prefixes: str
    ) -> Iterator[Tuple[ModuleContext, ModuleFacts]]:
        """Units whose module lives under any of the dotted prefixes."""
        for ctx, facts in self.units:
            if ctx.in_package(*prefixes):
                yield ctx, facts
