"""Tracked performance benchmarks for the simulation hot path.

The ROADMAP's north star is a simulator that runs "as fast as the
hardware allows" — which is only meaningful if speed is a *measured,
regression-guarded* quantity. This module pins a panel of workloads that
exercise the hot path from three directions and records raw simulation
throughput (slots/s and arrival packets/s) to ``BENCH_<tag>.json`` files
that live next to the correctness benchmarks:

* **uniform** — memoryless Poisson traffic at moderate overload: the
  generic regime, buffer mostly full, moderate congestion.
* **mmpp** — the paper's Section V-A bursty on/off traffic: long idle
  stretches (exercising the idle-slot fast path) punctuated by bursts.
* **adversarial** — saturating bursts of ~1.5n packets every slot
  against a small buffer, so *every* arrival lands on a full buffer and
  the push-out victim search dominates. This is the Fig. 5 large-``n``
  high-congestion regime where naive O(n)-per-arrival selectors turn
  quadratic.

Each workload comes in a small-``n`` and a large-``n`` flavor, and runs
a pinned set of push-out policies over a pinned seed, so two reports are
comparable run-to-run and machine-to-machine modulo hardware. Per-policy
*objectives* (transmitted packets / value) are recorded alongside the
timings: any drift between two reports' objectives means the two runs
simulated different decisions, i.e. a determinism bug, not a perf delta.

``BENCH_seed.json`` (committed) is the pre-fast-path baseline recorded
on the naive O(n)-scan engine; :func:`compare_reports` implements the
CI regression gate against it. See ``repro bench --help`` for the CLI.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

try:  # pure-stdlib installs can still load the module and its gates
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None  # type: ignore[assignment]

from repro.analysis.competitive import PolicySystem, run_system
from repro.core.config import QueueDiscipline, SwitchConfig
from repro.core.errors import ConfigError
from repro.policies import make_policy
from repro.traffic.trace import Trace

#: Report schema version, bumped on incompatible layout changes.
SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# Pinned workload panels
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BenchPanel:
    """One pinned benchmark workload: a config, a trace recipe, policies.

    Panels are frozen on purpose: the value of a tracked benchmark is
    that two reports measured *the same computation*. Scale runs up or
    down with ``slots_scale`` (recorded in the report) rather than by
    editing panel definitions.
    """

    name: str
    model: str  # "processing" | "value"
    workload: str  # "uniform" | "mmpp" | "adversarial" | "spike" | "flap"
    n_ports: int
    buffer_size: int
    n_slots: int
    seed: int
    policies: Tuple[str, ...]
    load: float = 2.0
    #: Per-port reserved slots; 0 keeps the paper's purely shared model.
    reserved_per_port: int = 0

    def config(self) -> SwitchConfig:
        model = None
        if self.reserved_per_port:
            from repro.core.config import BufferModel

            model = BufferModel.split(
                (self.reserved_per_port,) * self.n_ports,
                self.buffer_size - self.reserved_per_port * self.n_ports,
            )
        if self.model == "processing":
            config = SwitchConfig.contiguous(
                self.n_ports, self.buffer_size
            )
        else:
            config = SwitchConfig.value_contiguous(
                self.n_ports, self.buffer_size
            )
        if model is None:
            return config
        return SwitchConfig(
            buffer_size=config.buffer_size,
            ports=config.ports,
            speedup=config.speedup,
            discipline=config.discipline,
            buffer_model=model,
        )

    def trace(self, slots_scale: float = 1.0) -> Trace:
        n_slots = max(1, int(round(self.n_slots * slots_scale)))
        config = self.config()
        if self.workload == "uniform":
            from repro.traffic.patterns import poisson_workload

            return poisson_workload(
                config, n_slots, load=self.load, seed=self.seed
            )
        if self.workload == "mmpp":
            if self.model == "processing":
                from repro.traffic.workloads import processing_workload

                return processing_workload(
                    config, n_slots, load=self.load, seed=self.seed
                )
            from repro.traffic.workloads import value_uniform_workload

            return value_uniform_workload(
                config, n_slots, 16, load=self.load, seed=self.seed
            )
        if self.workload == "adversarial":
            return saturating_workload(config, n_slots, seed=self.seed)
        if self.workload == "spike":
            from repro.traffic.dynamic import oversubscription_spike_workload

            return oversubscription_spike_workload(
                config, n_slots, load=self.load, seed=self.seed
            )
        if self.workload == "flap":
            from repro.traffic.dynamic import port_flap_workload

            return port_flap_workload(
                config, n_slots, load=self.load, seed=self.seed
            )
        raise ConfigError(f"unknown bench workload {self.workload!r}")

    def columnar_trace(self, slots_scale: float = 1.0):
        """The panel's trace as flat columns — byte-identical twin.

        Same recipe selection as :meth:`trace`, routed through the
        columnar generators of :mod:`repro.traffic.columnar`; packet
        order and content are pinned equal by the differential suite
        and the golden trace digests.
        """
        n_slots = max(1, int(round(self.n_slots * slots_scale)))
        config = self.config()
        if self.workload == "uniform":
            from repro.traffic.columnar import columnar_poisson_workload

            return columnar_poisson_workload(
                config, n_slots, load=self.load, seed=self.seed
            )
        if self.workload == "mmpp":
            if self.model == "processing":
                from repro.traffic.columnar import (
                    columnar_processing_workload,
                )

                return columnar_processing_workload(
                    config, n_slots, load=self.load, seed=self.seed
                )
            from repro.traffic.columnar import (
                columnar_value_uniform_workload,
            )

            return columnar_value_uniform_workload(
                config, n_slots, 16, load=self.load, seed=self.seed
            )
        if self.workload == "adversarial":
            from repro.traffic.columnar import columnar_saturating_workload

            return columnar_saturating_workload(
                config, n_slots, seed=self.seed
            )
        if self.workload in ("spike", "flap"):
            # The dynamic generators are pure-python slot loops with no
            # vectorizable inner structure; the columnar twin is the
            # exact conversion (byte-identical by construction).
            from repro.traffic.columnar import ColumnarTrace

            return ColumnarTrace.from_trace(self.trace(slots_scale))
        raise ConfigError(f"unknown bench workload {self.workload!r}")

    def trace_content_key(self, slots_scale: float = 1.0) -> str:
        """Content key of the panel's trace for the trace store.

        Covers everything the generators consume — recipe, port count,
        slot count, load, seed. Buffer size is deliberately absent: no
        bench generator reads ``B``, which is what lets a B-varied
        pipeline cell row share one stored trace.
        """
        n_slots = max(1, int(round(self.n_slots * slots_scale)))
        return (
            f"bench|{self.workload}|{self.model}|ports={self.n_ports}"
            f"|slots={n_slots}|load={self.load!r}|seed={self.seed}"
        )

    def spec(self) -> Dict[str, object]:
        return {
            "model": self.model,
            "workload": self.workload,
            "n_ports": self.n_ports,
            "buffer_size": self.buffer_size,
            "n_slots": self.n_slots,
            "seed": self.seed,
            "load": self.load,
            "reserved_per_port": self.reserved_per_port,
            "policies": list(self.policies),
        }


def saturating_workload(
    config: SwitchConfig, n_slots: int, *, seed: int = 0
) -> Trace:
    """Adversarial congestion: ~1.5n uniformly-addressed packets per slot.

    Offered load is far above any service rate, so after a couple of
    slots the buffer is permanently full and every single arrival goes
    through the policy's congested-path victim search. Value-model
    packets draw small integer values so exact value ties (the hard
    tie-breaking cases) occur constantly.
    """
    if n_slots < 1:
        raise ConfigError(f"need >= 1 slot, got {n_slots}")
    if np is None:
        raise ConfigError(
            "the adversarial bench workload needs numpy (its packet "
            "stream is pinned to numpy's PCG64); install numpy or pick "
            "a different panel"
        )
    rng = np.random.default_rng(seed)
    n = config.n_ports
    per_slot = max(2, (3 * n) // 2)
    works = config.works
    values = config.values
    by_value = config.discipline is QueueDiscipline.PRIORITY
    from repro.core.packet import Packet

    trace = Trace()
    for slot in range(n_slots):
        ports = rng.integers(0, n, size=per_slot)
        if by_value:
            vals = rng.integers(1, 17, size=per_slot)
            burst = [
                Packet(port=int(p), work=1, value=float(v), arrival_slot=slot)
                for p, v in zip(ports, vals)
            ]
        else:
            burst = [
                Packet(
                    port=int(p),
                    work=works[int(p)],
                    value=values[int(p)],
                    arrival_slot=slot,
                )
                for p in ports
            ]
        trace.append_slot(burst)
    return trace


_PROC_POLICIES = ("LQD", "LWD", "BPD")
_VALUE_POLICIES = ("LQD-V", "MVD", "MRD")
_DYNAMIC_POLICIES = ("LQD", "Harmonic", "DT")

#: The pinned panel set. Names are stable identifiers used by reports,
#: the CLI, and the CI regression gate.
PANELS: Dict[str, BenchPanel] = {
    panel.name: panel
    for panel in (
        BenchPanel(
            name="uniform-proc-small",
            model="processing",
            workload="uniform",
            n_ports=8,
            buffer_size=64,
            n_slots=2000,
            seed=11,
            policies=_PROC_POLICIES,
            load=1.4,
        ),
        BenchPanel(
            name="uniform-proc-large",
            model="processing",
            workload="uniform",
            n_ports=96,
            buffer_size=384,
            n_slots=300,
            seed=11,
            policies=_PROC_POLICIES,
            load=1.4,
        ),
        BenchPanel(
            name="mmpp-proc-small",
            model="processing",
            workload="mmpp",
            n_ports=8,
            buffer_size=64,
            n_slots=2000,
            seed=12,
            policies=_PROC_POLICIES,
            load=2.0,
        ),
        BenchPanel(
            name="mmpp-proc-large",
            model="processing",
            workload="mmpp",
            n_ports=96,
            buffer_size=384,
            n_slots=300,
            seed=12,
            policies=_PROC_POLICIES,
            load=2.0,
        ),
        BenchPanel(
            name="adversarial-proc-small",
            model="processing",
            workload="adversarial",
            n_ports=8,
            buffer_size=32,
            n_slots=1500,
            seed=13,
            policies=_PROC_POLICIES,
        ),
        BenchPanel(
            name="adversarial-proc-large",
            model="processing",
            workload="adversarial",
            n_ports=96,
            buffer_size=192,
            n_slots=250,
            seed=13,
            policies=_PROC_POLICIES,
        ),
        BenchPanel(
            name="adversarial-value-small",
            model="value",
            workload="adversarial",
            n_ports=8,
            buffer_size=32,
            n_slots=1500,
            seed=14,
            policies=_VALUE_POLICIES,
        ),
        BenchPanel(
            name="adversarial-value-large",
            model="value",
            workload="adversarial",
            n_ports=96,
            buffer_size=192,
            n_slots=250,
            seed=14,
            policies=_VALUE_POLICIES,
        ),
        BenchPanel(
            name="dynamic-flap-small",
            model="processing",
            workload="flap",
            n_ports=8,
            buffer_size=64,
            n_slots=1500,
            seed=15,
            policies=_DYNAMIC_POLICIES,
            load=0.9,
        ),
        BenchPanel(
            name="dynamic-split-small",
            model="processing",
            workload="spike",
            n_ports=8,
            buffer_size=64,
            n_slots=1500,
            seed=16,
            policies=_DYNAMIC_POLICIES,
            load=0.9,
            reserved_per_port=2,
        ),
    )
}


def select_panels(selector: Sequence[str]) -> List[BenchPanel]:
    """Resolve CLI panel selectors: names, ``small``, ``large``, ``all``."""
    if not selector:
        selector = ["all"]
    chosen: Dict[str, BenchPanel] = {}
    for item in selector:
        if item == "all":
            chosen.update(PANELS)
        elif item in ("small", "large"):
            chosen.update(
                (name, panel)
                for name, panel in PANELS.items()
                if name.endswith(f"-{item}")
            )
        elif item in PANELS:
            chosen[item] = PANELS[item]
        else:
            known = ", ".join(list(PANELS) + ["small", "large", "all"])
            raise ConfigError(f"unknown bench panel {item!r}; known: {known}")
    return list(chosen.values())


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------


@dataclass
class PolicyTiming:
    """Throughput of one policy over one panel's trace."""

    policy: str
    elapsed_s: float
    n_slots: int
    n_packets: int
    objective: float

    @property
    def slots_per_s(self) -> float:
        return self.n_slots / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def packets_per_s(self) -> float:
        return self.n_packets / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "elapsed_s": round(self.elapsed_s, 6),
            "slots_per_s": round(self.slots_per_s, 2),
            "packets_per_s": round(self.packets_per_s, 2),
            "objective": self.objective,
        }


@dataclass
class PanelResult:
    """All policy timings of one panel plus aggregates."""

    panel: BenchPanel
    timings: List[PolicyTiming] = field(default_factory=list)
    total_packets: int = 0

    @property
    def elapsed_s(self) -> float:
        return sum(t.elapsed_s for t in self.timings)

    @property
    def slots_per_s(self) -> float:
        """Aggregate throughput: simulated slots over wall-clock, summed
        across policy runs (the regression-gate headline number)."""
        elapsed = self.elapsed_s
        total_slots = sum(t.n_slots for t in self.timings)
        return total_slots / elapsed if elapsed > 0 else 0.0

    @property
    def packets_per_s(self) -> float:
        elapsed = self.elapsed_s
        total = sum(t.n_packets for t in self.timings)
        return total / elapsed if elapsed > 0 else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "spec": self.panel.spec(),
            "total_packets": self.total_packets,
            "elapsed_s": round(self.elapsed_s, 6),
            "slots_per_s": round(self.slots_per_s, 2),
            "packets_per_s": round(self.packets_per_s, 2),
            "per_policy": [t.as_dict() for t in self.timings],
        }


def _environment() -> Dict[str, object]:
    import repro

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": __import__("os").cpu_count(),
        "numpy": "absent" if np is None else np.__version__,
        "repro_version": getattr(repro, "__version__", "unknown"),
        "argv": sys.argv[1:],
    }


def run_panel_bench(
    panel: BenchPanel,
    *,
    mode: str = "fast",
    slots_scale: float = 1.0,
) -> PanelResult:
    """Time every pinned policy of one panel over its pinned trace.

    Trace generation is excluded from the timed region; the timer wraps
    exactly the slot loop (:func:`repro.analysis.competitive.run_system`)
    — the quantity the fast-path work optimizes.
    """
    trace = panel.trace(slots_scale)
    config = panel.config()
    by_value = config.discipline is QueueDiscipline.PRIORITY
    result = PanelResult(panel=panel, total_packets=trace.total_packets)
    for policy_name in panel.policies:
        policy = make_policy(policy_name)
        system = _make_system(config, policy, mode)
        started = time.perf_counter()
        metrics = run_system(system, trace)
        elapsed = time.perf_counter() - started
        result.timings.append(
            PolicyTiming(
                policy=policy_name,
                elapsed_s=elapsed,
                n_slots=trace.n_slots,
                n_packets=trace.total_packets,
                objective=metrics.objective(by_value),
            )
        )
    return result


def _make_system(config: SwitchConfig, policy, mode: str) -> PolicySystem:
    """Build the simulated system in one of the benchmarkable modes.

    ``fast``/``naive`` pick the reference engine's selector mode
    (``naive`` is the O(n)-scan oracle); ``vectorized`` picks the
    columnar batch-slot engine. On engines that predate the fast path
    (the seed baseline) the keywords do not exist and the only mode is
    the naive one.
    """
    if mode == "vectorized":
        return PolicySystem(config, policy, engine="vectorized")
    if mode not in ("fast", "naive"):
        raise ConfigError(
            f"bench mode must be fast|naive|vectorized, got {mode!r}"
        )
    try:
        return PolicySystem(config, policy, fast_path=(mode == "fast"))
    except TypeError:
        return PolicySystem(config, policy)


def run_bench(
    panels: Sequence[BenchPanel],
    *,
    tag: str = "local",
    mode: str = "fast",
    slots_scale: float = 1.0,
    repeats: int = 1,
    progress=None,
) -> Dict[str, object]:
    """Run panels and assemble the ``BENCH_<tag>.json`` report dict.

    ``repeats`` runs each panel that many times and reports its
    *best* aggregate throughput. Single runs on shared or
    frequency-scaled machines vary by 2x and more; speedup gates
    compare best-effort capability, not scheduler luck, so CI smoke
    jobs should pass ``repeats >= 3``.
    """
    if repeats < 1:
        raise ConfigError(f"repeats must be >= 1, got {repeats}")
    report: Dict[str, object] = {
        "schema": SCHEMA_VERSION,
        "tag": tag,
        "mode": mode,
        "slots_scale": slots_scale,
        "repeats": repeats,
        "created": datetime.now(timezone.utc).isoformat(),
        "environment": _environment(),
        "panels": {},
    }
    for panel in panels:
        result = run_panel_bench(panel, mode=mode, slots_scale=slots_scale)
        for _ in range(repeats - 1):
            again = run_panel_bench(
                panel, mode=mode, slots_scale=slots_scale
            )
            if again.slots_per_s > result.slots_per_s:
                result = again
        report["panels"][panel.name] = result.as_dict()
        if progress is not None:
            progress(
                f"{panel.name}: {result.slots_per_s:.1f} slots/s, "
                f"{result.packets_per_s:.1f} packets/s "
                f"({result.elapsed_s:.2f}s)"
            )
    return report


# ----------------------------------------------------------------------
# End-to-end pipeline bench (trace gen + policy runs + OPT per cell)
# ----------------------------------------------------------------------

#: Pipeline panels gated by CI (the two large-n sweep-shaped panels).
PIPELINE_PANELS: Tuple[str, ...] = (
    "mmpp-proc-large",
    "adversarial-proc-large",
    "adversarial-value-large",
)

#: Cell rows of one pipeline panel: buffer sizes as fractions of the
#: panel's pinned ``B`` — a miniature Fig. 5 B-sweep whose cells share
#: one trace content (no bench generator reads ``B``).
_PIPELINE_BUFFER_STEPS: Tuple[float, ...] = (0.5, 1.0, 1.5)


def _pipeline_buffers(panel: BenchPanel) -> List[int]:
    buffers = []
    for step in _PIPELINE_BUFFER_STEPS:
        b = max(panel.n_ports, int(round(panel.buffer_size * step)))
        if b not in buffers:
            buffers.append(b)
    return buffers


def run_pipeline_panel_bench(
    panel: BenchPanel,
    *,
    accelerated: bool = True,
    slots_scale: float = 1.0,
) -> Dict[str, object]:
    """Time one panel as an end-to-end miniature sweep.

    A *cell* is one ``(buffer size, policy)`` pair — exactly the shape
    of a :func:`repro.analysis.sweep.run_sweep` cell: acquire the
    trace, run the policy, run the OPT surrogate, record both
    objectives. Trace generation is *included* in the timed region
    (unlike :func:`run_panel_bench`, which times the slot loop alone),
    and every cell pays its own OPT run, as the real sweep does.

    ``accelerated=False`` is the tracked baseline: object traces
    regenerated per cell (what ``run_sweep`` did before the trace
    store existed), the vectorized ALG engine (the pre-pipeline state
    of the repo), and the reference ``bisect`` OPT surrogate.
    ``accelerated=True`` swaps in the columnar trace pipeline:
    columnar twin generators, cross-cell reuse through a
    :class:`~repro.analysis.tracestore.TraceStore`, zero-copy columnar
    ingestion, and the vectorized OPT surrogate. Per-cell objectives
    (ALG and OPT) are recorded so any decision drift between the two
    modes shows up as a diff, not a silent wrong speedup.
    """
    from dataclasses import replace

    from repro.analysis.tracestore import TraceStore
    from repro.opt.surrogate import make_surrogate

    by_value = panel.model != "processing"
    buffers = _pipeline_buffers(panel)
    store = TraceStore() if accelerated else None
    opt_engine = "vectorized" if accelerated else "reference"
    n_slots = max(1, int(round(panel.n_slots * slots_scale)))

    cells: List[Dict[str, object]] = []
    started = time.perf_counter()
    for buffer_size in buffers:
        cell_panel = replace(panel, buffer_size=buffer_size)
        config = cell_panel.config()
        for policy_name in panel.policies:
            if store is not None:
                trace = store.get_or_build(
                    panel.trace_content_key(slots_scale),
                    lambda: cell_panel.columnar_trace(slots_scale),
                )
            else:
                trace = cell_panel.trace(slots_scale)
            system = PolicySystem(
                config, make_policy(policy_name), engine="vectorized"
            )
            metrics = run_system(system, trace)
            opt = make_surrogate(config, by_value, engine=opt_engine)
            opt_metrics = run_system(opt, trace)
            cells.append(
                {
                    "buffer_size": buffer_size,
                    "policy": policy_name,
                    "objectives": {
                        policy_name: metrics.objective(by_value),
                        "OPT": opt_metrics.objective(by_value),
                    },
                }
            )
    elapsed = time.perf_counter() - started

    n_cells = len(cells)
    return {
        "spec": panel.spec(),
        "buffers": buffers,
        "n_slots": n_slots,
        "cells": cells,
        "elapsed_s": round(elapsed, 6),
        "cells_per_s": round(
            n_cells / elapsed if elapsed > 0 else 0.0, 4
        ),
        "slots_per_s": round(
            n_cells * n_slots / elapsed if elapsed > 0 else 0.0, 2
        ),
    }


def run_pipeline_bench(
    panels: Sequence[BenchPanel],
    *,
    tag: str = "pipeline",
    accelerated: bool = True,
    slots_scale: float = 1.0,
    repeats: int = 1,
    progress=None,
) -> Dict[str, object]:
    """Assemble an end-to-end pipeline report (``kind: "pipeline"``).

    The headline rate is ``cells_per_s`` — end-to-end sweep cells per
    second — which :func:`compare_reports` / :func:`compare_speedup`
    pick up automatically for pipeline reports. ``repeats`` keeps each
    panel's best run, like :func:`run_bench`.
    """
    if repeats < 1:
        raise ConfigError(f"repeats must be >= 1, got {repeats}")
    report: Dict[str, object] = {
        "schema": SCHEMA_VERSION,
        "kind": "pipeline",
        "tag": tag,
        "mode": "accelerated" if accelerated else "baseline",
        "slots_scale": slots_scale,
        "repeats": repeats,
        "created": datetime.now(timezone.utc).isoformat(),
        "environment": _environment(),
        "panels": {},
    }
    for panel in panels:
        result = run_pipeline_panel_bench(
            panel, accelerated=accelerated, slots_scale=slots_scale
        )
        for _ in range(repeats - 1):
            again = run_pipeline_panel_bench(
                panel, accelerated=accelerated, slots_scale=slots_scale
            )
            if again["cells_per_s"] > result["cells_per_s"]:
                result = again
        report["panels"][panel.name] = result
        if progress is not None:
            progress(
                f"{panel.name}: {result['cells_per_s']:.2f} cells/s "
                f"({result['elapsed_s']:.2f}s for "
                f"{len(result['cells'])} cells)"
            )
    return report


def write_report(report: Mapping[str, object], out_dir: Path | str) -> Path:
    """Write the report as ``<out_dir>/BENCH_<tag>.json``; returns path.

    Published atomically (temp file + rename): CI gates load these
    reports, and a half-written baseline must never be observable.
    """
    from repro.resilience import atomic_write_json

    out_dir = Path(out_dir)
    path = out_dir / f"BENCH_{report['tag']}.json"
    return atomic_write_json(path, report, indent=2)


def load_report(path: Path | str) -> Dict[str, object]:
    with Path(path).open("r", encoding="utf-8") as handle:
        report = json.load(handle)
    if report.get("schema") != SCHEMA_VERSION:
        raise ConfigError(
            f"bench report {path} has schema {report.get('schema')!r}, "
            f"expected {SCHEMA_VERSION}"
        )
    return report


# ----------------------------------------------------------------------
# Observer overhead
# ----------------------------------------------------------------------


def run_obs_bench(
    panels: Sequence[BenchPanel],
    *,
    tag: str = "obs",
    slots_scale: float = 1.0,
    progress=None,
) -> Dict[str, object]:
    """Measure JSONL-recording overhead per panel (reported, not gated).

    For each panel the *first* pinned policy is run twice over the same
    trace: once with the observer slot empty (the fenced configuration)
    and once streaming the full event trace to a temporary JSONL file
    through :class:`~repro.obs.trace_io.JsonlTraceWriter`. The report
    records both rates plus the relative overhead and the trace size —
    the honest price list for turning recording on. The disabled-path
    *gate* lives in ``benchmarks/test_fastpath_perf.py``; this report
    only documents the recording cost.
    """
    import os
    import tempfile

    from repro.obs.trace_io import JsonlTraceWriter

    report: Dict[str, object] = {
        "schema": SCHEMA_VERSION,
        "kind": "observer-overhead",
        "tag": tag,
        "mode": "fast",
        "slots_scale": slots_scale,
        "created": datetime.now(timezone.utc).isoformat(),
        "environment": _environment(),
        "panels": {},
    }
    for panel in panels:
        trace = panel.trace(slots_scale)
        config = panel.config()
        by_value = config.discipline is QueueDiscipline.PRIORITY
        policy_name = panel.policies[0]

        def timed_run(observer) -> Tuple[float, float]:
            system = PolicySystem(
                config, make_policy(policy_name), observer=observer
            )
            started = time.perf_counter()
            metrics = run_system(system, trace)
            return (
                time.perf_counter() - started,
                metrics.objective(by_value),
            )

        disabled_s, disabled_obj = timed_run(None)
        handle, path = tempfile.mkstemp(suffix=".jsonl", prefix="obsbench-")
        os.close(handle)
        try:
            writer = JsonlTraceWriter(
                path, header={"panel": panel.name, "policy": policy_name}
            )
            recording_s, recording_obj = timed_run(writer)
            writer.write_end()
            events = writer.events_written
            trace_bytes = os.path.getsize(path)
        finally:
            os.unlink(path)
        if recording_obj != disabled_obj:
            raise ConfigError(
                f"observer changed the simulation on {panel.name}: "
                f"objective {recording_obj} != {disabled_obj}"
            )
        n_slots = trace.n_slots
        disabled_rate = n_slots / disabled_s if disabled_s > 0 else 0.0
        recording_rate = n_slots / recording_s if recording_s > 0 else 0.0
        overhead = (
            (disabled_rate / recording_rate - 1.0)
            if recording_rate > 0
            else 0.0
        )
        report["panels"][panel.name] = {
            "spec": panel.spec(),
            "policy": policy_name,
            "n_slots": n_slots,
            "disabled_slots_per_s": round(disabled_rate, 2),
            "recording_slots_per_s": round(recording_rate, 2),
            "recording_overhead_pct": round(100 * overhead, 1),
            "events": events,
            "trace_bytes": trace_bytes,
            "objective": disabled_obj,
        }
        if progress is not None:
            progress(
                f"{panel.name}: disabled {disabled_rate:.1f} slots/s, "
                f"recording {recording_rate:.1f} slots/s "
                f"(+{100 * overhead:.1f}%, {trace_bytes} bytes)"
            )
    return report


def format_obs_report(report: Mapping[str, object]) -> str:
    """Human-readable table of an observer-overhead report."""
    lines = [
        f"# observer overhead tag={report['tag']} "
        f"scale={report['slots_scale']}",
        f"{'panel':26s} {'off slots/s':>12s} {'rec slots/s':>12s} "
        f"{'overhead':>9s} {'bytes':>10s}",
    ]
    for name, panel in report["panels"].items():
        lines.append(
            f"{name:26s} {panel['disabled_slots_per_s']:12.1f} "
            f"{panel['recording_slots_per_s']:12.1f} "
            f"{panel['recording_overhead_pct']:8.1f}% "
            f"{panel['trace_bytes']:10d}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Regression gate
# ----------------------------------------------------------------------


def _panel_rate(panel: Mapping[str, object]) -> float:
    """A panel's headline rate: ``cells_per_s`` for pipeline reports
    (end-to-end sweep cells), ``slots_per_s`` for engine reports."""
    return float(panel.get("cells_per_s", panel.get("slots_per_s", 0.0)))


@dataclass(frozen=True)
class Regression:
    """One panel whose throughput fell below the allowed fraction."""

    panel: str
    current: float
    baseline: float
    allowed: float

    def __str__(self) -> str:
        return (
            f"{self.panel}: {self.current:.1f} slots/s < "
            f"{self.allowed:.1f} allowed "
            f"(baseline {self.baseline:.1f}, "
            f"{self.current / self.baseline:.2f}x)"
        )


def compare_reports(
    current: Mapping[str, object],
    baseline: Mapping[str, object],
    *,
    max_regression: float = 0.25,
) -> List[Regression]:
    """Panels in ``current`` slower than ``(1 - max_regression) x`` baseline.

    Only panels present in both reports are compared, on the aggregate
    ``slots_per_s``; normalizes away ``slots_scale`` differences (slots/s
    is already a rate, so no normalization is actually needed — scaling a
    run changes duration, not throughput).
    """
    if not 0 <= max_regression < 1:
        raise ConfigError(
            f"max_regression must be in [0, 1), got {max_regression}"
        )
    regressions: List[Regression] = []
    base_panels: Mapping[str, Mapping] = baseline.get("panels", {})
    for name, panel in current.get("panels", {}).items():
        base = base_panels.get(name)
        if base is None:
            continue
        base_rate = _panel_rate(base)
        rate = _panel_rate(panel)
        allowed = (1.0 - max_regression) * base_rate
        if rate < allowed:
            regressions.append(
                Regression(
                    panel=name,
                    current=rate,
                    baseline=base_rate,
                    allowed=allowed,
                )
            )
    return regressions


@dataclass(frozen=True)
class SpeedupShortfall:
    """One panel whose speedup over the baseline missed the floor."""

    panel: str
    current: float
    baseline: float
    required: float

    @property
    def achieved(self) -> float:
        return self.current / self.baseline if self.baseline > 0 else 0.0

    def __str__(self) -> str:
        return (
            f"{self.panel}: {self.achieved:.2f}x < {self.required:.2f}x "
            f"required ({self.current:.1f} vs baseline "
            f"{self.baseline:.1f} slots/s)"
        )


def compare_speedup(
    current: Mapping[str, object],
    baseline: Mapping[str, object],
    *,
    min_speedup: float,
    panels: Optional[Sequence[str]] = None,
    tolerance: float = 0.25,
) -> List[SpeedupShortfall]:
    """Panels whose aggregate throughput gain misses ``min_speedup``.

    The vectorized-engine acceptance gate: ``current`` (a vectorized
    report) must be at least ``min_speedup * (1 - tolerance)`` times the
    ``baseline`` (the committed fast-path report) on every selected
    panel. The tolerance term is the same 25%-fence style as
    :func:`compare_reports` — committed baselines were recorded on
    different hardware, so an exact multiplier would gate on machine
    identity rather than on the engine.

    With ``panels=None`` every panel present in both reports is gated.
    A selected panel missing from either report is itself a failure
    (reported with zero rates) — silently skipping it would pass the
    gate without measuring anything.
    """
    if min_speedup <= 0:
        raise ConfigError(f"min_speedup must be > 0, got {min_speedup}")
    if not 0 <= tolerance < 1:
        raise ConfigError(f"tolerance must be in [0, 1), got {tolerance}")
    cur_panels: Mapping[str, Mapping] = current.get("panels", {})
    base_panels: Mapping[str, Mapping] = baseline.get("panels", {})
    if panels is None:
        names: Sequence[str] = [
            name for name in cur_panels if name in base_panels
        ]
    else:
        names = panels
    required = min_speedup * (1.0 - tolerance)
    shortfalls: List[SpeedupShortfall] = []
    for name in names:
        cur = cur_panels.get(name)
        base = base_panels.get(name)
        if cur is None or base is None:
            shortfalls.append(
                SpeedupShortfall(
                    panel=name,
                    current=0.0 if cur is None else _panel_rate(cur),
                    baseline=0.0 if base is None else _panel_rate(base),
                    required=required,
                )
            )
            continue
        rate = _panel_rate(cur)
        base_rate = _panel_rate(base)
        if rate < required * base_rate:
            shortfalls.append(
                SpeedupShortfall(
                    panel=name,
                    current=rate,
                    baseline=base_rate,
                    required=required,
                )
            )
    return shortfalls


def format_pipeline_report(report: Mapping[str, object]) -> str:
    """Human-readable table of a pipeline report (CLI output)."""
    lines = [
        f"# pipeline bench tag={report['tag']} mode={report['mode']} "
        f"scale={report['slots_scale']}",
        f"{'panel':26s} {'cells/s':>10s} {'cells':>6s} {'time':>8s}",
    ]
    for name, panel in report["panels"].items():
        lines.append(
            f"{name:26s} {panel['cells_per_s']:10.2f} "
            f"{len(panel['cells']):6d} {panel['elapsed_s']:7.2f}s"
        )
    return "\n".join(lines)


def format_report(report: Mapping[str, object]) -> str:
    """Human-readable table of one report (CLI output)."""
    lines = [
        f"# bench tag={report['tag']} mode={report['mode']} "
        f"scale={report['slots_scale']}",
        f"{'panel':26s} {'slots/s':>12s} {'packets/s':>14s} {'time':>8s}",
    ]
    for name, panel in report["panels"].items():
        lines.append(
            f"{name:26s} {panel['slots_per_s']:12.1f} "
            f"{panel['packets_per_s']:14.1f} {panel['elapsed_s']:7.2f}s"
        )
    return "\n".join(lines)
