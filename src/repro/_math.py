"""Small shared math helpers used by policies and theory formulas."""

from __future__ import annotations

from functools import lru_cache

#: Euler-Mascheroni constant, appearing in the BPD lower bound (Theorem 5).
EULER_GAMMA = 0.5772156649015329


@lru_cache(maxsize=None)
def harmonic_number(m: int) -> float:
    """The m-th harmonic number ``H_m = 1 + 1/2 + ... + 1/m`` (``H_0 = 0``).

    Cached because the NHDT threshold evaluates harmonic numbers on every
    arrival; the recursion keeps the cache warm incrementally.
    """
    if m < 0:
        raise ValueError(f"harmonic number of negative m={m}")
    if m == 0:
        return 0.0
    total = 0.0
    for i in range(1, m + 1):
        total += 1.0 / i
    return total


def harmonic_range(lo: int, hi: int) -> float:
    """``1/lo + 1/(lo+1) + ... + 1/hi`` (0 when the range is empty).

    Appears as ``beta_{k,m} = H_k - H_{k-m}`` in Theorem 4 and similar
    partial harmonic sums throughout the lower-bound constructions.
    """
    if hi < lo:
        return 0.0
    return sum(1.0 / i for i in range(lo, hi + 1))
