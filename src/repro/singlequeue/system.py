"""The single-queue architecture of Fig. 1 (top): one buffer, any core.

The paper motivates the shared-memory switch by contrasting it with the
classical *single queue* design, where the whole buffer is one queue and
every core can process any packet, run-to-completion: once a core picks a
packet, no other core may touch it until it finishes (rescheduling is too
expensive at line rate).

Two admission/service disciplines are modeled, matching the paper's
discussion in the introduction:

* **PQ** — packets are served in non-decreasing order of required work,
  and admission pushes out the largest-work *waiting* packet when a
  smaller one arrives into a full buffer. This is the policy of
  Keslassy-Kogan-Scalosub-Segal [11] that the paper cites as having
  optimal throughput in the single-queue model — and the one the Fig. 5
  OPT surrogate approximates.
* **FIFO** — greedy non-push-out first-in-first-out service; the paper
  cites an ``Omega(log k)`` competitive blow-up for FIFO ordering [19].

The run-to-completion constraint is what distinguishes this system from
:class:`repro.opt.surrogate.SrptSurrogate`: the surrogate re-sorts by
residual every slot (an idealization that may *beat* the true OPT), while
here a core is occupied by its packet for that packet's full work.

This substrate exists to reproduce the paper's *motivational* claims
(Section I): the single-queue PQ maximizes throughput but starves heavy
traffic classes — "priorities ... rigged to the inverse of the processing
requirements" — while the shared-memory switch with LWD serves every
class. See :mod:`repro.experiments.architecture`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence

from repro.core.config import SwitchConfig
from repro.core.errors import ConfigError
from repro.core.metrics import SwitchMetrics
from repro.core.packet import Packet


class SingleQueueSystem:
    """One shared buffer, ``m`` identical run-to-completion cores.

    Implements the :class:`repro.opt.surrogate.System` protocol
    (``run_slot`` / ``flush`` / ``metrics`` / ``backlog``) so it can be
    driven by the same runners as the shared-memory switch.

    Parameters
    ----------
    config:
        Reused for its buffer size, port labels (traffic classes), and
        core count default (``n * C``).
    discipline:
        ``"pq"`` (smallest-work-first with push-out; throughput-optimal)
        or ``"fifo"`` (greedy non-push-out, arrival order).
    cores:
        Number of cores; defaults to ``config.n_ports * config.speedup``.
    """

    def __init__(
        self,
        config: SwitchConfig,
        discipline: str = "pq",
        cores: Optional[int] = None,
    ) -> None:
        if discipline not in ("pq", "fifo"):
            raise ConfigError(f"unknown single-queue discipline {discipline!r}")
        self.config = config
        self.discipline = discipline
        self.cores = cores if cores is not None else (
            config.n_ports * config.speedup
        )
        if self.cores < 1:
            raise ConfigError(f"need >= 1 core, got {self.cores}")
        self.buffer_size = config.buffer_size
        self.metrics = SwitchMetrics(n_ports=config.n_ports)
        # Waiting room: sorted ascending by required work for PQ (ties
        # FIFO), plain FIFO otherwise. In-service packets occupy their
        # cores (and buffer slots) until completion.
        self._waiting: Deque[Packet] = deque()
        self._in_service: List[Packet] = []
        self.current_slot = 0

    # ------------------------------------------------------------------

    @property
    def backlog(self) -> int:
        return len(self._waiting) + len(self._in_service)

    def flush(self) -> int:
        """Drop all *waiting* packets (in-service packets keep their
        cores; preempting them would violate run-to-completion)."""
        dropped = list(self._waiting)
        self._waiting.clear()
        self.metrics.record_flush(dropped)
        return len(dropped)

    def run_slot(self, arrivals: Sequence[Packet]) -> List[Packet]:
        for packet in arrivals:
            self.metrics.record_arrival(packet)
            self._admit(packet)
        self._dispatch()
        done = self._process()
        self.metrics.record_transmissions(done, slot=self.current_slot)
        self.metrics.record_slot(self.backlog)
        self.current_slot += 1
        return done

    # ------------------------------------------------------------------

    def _admit(self, packet: Packet) -> None:
        admitted = packet.fresh_copy()
        if self.backlog < self.buffer_size:
            self._enqueue(admitted)
            self.metrics.record_accept(admitted)
            return
        if self.discipline == "fifo":
            self.metrics.record_drop(packet)
            return
        # PQ push-out: evict the largest-work waiting packet if strictly
        # larger than the arrival (in-service packets cannot be evicted).
        victim_idx = None
        victim_work = admitted.work
        for idx, waiting in enumerate(self._waiting):
            if waiting.work > victim_work:
                victim_work = waiting.work
                victim_idx = idx
        if victim_idx is None:
            self.metrics.record_drop(packet)
            return
        victim = self._waiting[victim_idx]
        del self._waiting[victim_idx]
        self.metrics.record_push_out(victim)
        self._enqueue(admitted)
        self.metrics.record_accept(admitted)

    def _enqueue(self, packet: Packet) -> None:
        if self.discipline == "fifo":
            self._waiting.append(packet)
            return
        # Insert keeping ascending work, FIFO among equals.
        for idx, waiting in enumerate(self._waiting):
            if waiting.work > packet.work:
                self._waiting.insert(idx, packet)
                return
        self._waiting.append(packet)

    def _dispatch(self) -> None:
        while self._waiting and len(self._in_service) < self.cores:
            self._in_service.append(self._waiting.popleft())

    def _process(self) -> List[Packet]:
        done: List[Packet] = []
        still_busy: List[Packet] = []
        for packet in self._in_service:
            packet.residual -= 1
            if packet.residual == 0:
                done.append(packet)
            else:
                still_busy.append(packet)
        self._in_service = still_busy
        return done
