"""The single-queue architecture (Fig. 1, top) as a comparison substrate."""

from repro.singlequeue.system import SingleQueueSystem

__all__ = ["SingleQueueSystem"]
