"""Command-line interface: ``python -m repro`` / ``shmem-switch``.

Subcommands
-----------
``list``
    Show all experiments (Fig. 5 panels and theorem validations).
``policies``
    Show all registered buffer-management policies.
``run EXPERIMENT``
    Run a Fig. 5 panel (prints the ratio table, optionally writes CSV) or
    a theorem validation (prints measured vs. predicted ratio).
``scenario THM``
    Run an adversarial construction with custom ``--k/--buffer`` sizes.
``bench``
    Run the pinned performance panels, write ``BENCH_<tag>.json``, and
    optionally gate against a baseline report (``--baseline`` alone
    gates on regression; with ``--min-speedup`` it gates on a speedup
    floor instead — the vectorized-engine acceptance check).
``golden``
    Check the committed golden decision-stream fixture on both engines
    (``--check``, the default) or regenerate it (``--update``).
``trace``
    Record a pinned bench panel as a JSONL event trace, or replay-verify
    a recorded trace (conservation laws + byte-equal metrics).
``profile``
    Run a sweep experiment and print the per-stage wall-clock breakdown
    (trace generation vs. policy runs vs. OPT surrogate).
``cache``
    Verify the sweep result cache (checksum every entry) or garbage-
    collect corrupt/legacy/quarantined entries.
``check``
    Run the contract-aware static analyzer (determinism lint, hot-path
    allocation audit, policy-API conformance, IO hygiene) over source
    paths. See ``docs/STATIC_ANALYSIS.md``.
``farm``
    The distributed sweep farm (``docs/FARM.md``): ``serve`` runs a
    coordinator waiting for external workers, ``work`` attaches a
    worker to a coordinator, ``status`` snapshots a running farm
    (``--format json`` for machines), ``merge`` folds coordinator and
    worker journals into one canonical journal.

Resilience (see ``docs/RESILIENCE.md``): ``run`` accepts
``--timeout/--retries`` (supervised worker execution), ``--journal``
(checkpointed progress; an interrupted run exits 130 and drops a
resume manifest), ``--resume MANIFEST`` (continue where it stopped),
and ``--inject-faults SPEC`` (deterministic chaos for testing).
``run --farm N`` distributes Fig. 5 cells over N spawned socket
workers (plus any that attach); farmed output is byte-identical to a
local run by contract.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.competitive import run_scenario
from repro.analysis.sweep import SweepResult
from repro.core.errors import (
    ConfigError,
    ReproError,
    SweepExecutionError,
    SweepInterrupted,
)
from repro.experiments.registry import (
    describe_experiment,
    list_experiments,
    run_experiment,
)
from repro.policies import available_policies
from repro.traffic.adversarial import ALL_SCENARIOS


def _cmd_list(_args: argparse.Namespace) -> int:
    for experiment_id in list_experiments():
        print(f"{experiment_id:10s} {describe_experiment(experiment_id)}")
    return 0


def _cmd_policies(_args: argparse.Namespace) -> int:
    for entry in available_policies():
        models = "/".join(sorted(entry.models))
        print(f"{entry.name:8s} [{models:16s}] {entry.summary}")
    return 0


def _sweep_cache_dir(args: argparse.Namespace) -> Optional[str]:
    """Resolve the cache directory from --cache-dir / --no-cache."""
    if getattr(args, "no_cache", False):
        return None
    if getattr(args, "cache_dir", None):
        return args.cache_dir
    from repro.analysis.cache import default_cache_dir

    return str(default_cache_dir())


def _resilience_options(args: argparse.Namespace):
    """SupervisorOptions from --timeout/--retries (None = defaults)."""
    from repro.resilience import SupervisorOptions

    options = SupervisorOptions()
    if getattr(args, "timeout", None) is not None:
        options.timeout = args.timeout
    if getattr(args, "retries", None) is not None:
        options.retries = args.retries
    return options


def _farm_options(args: argparse.Namespace):
    """FarmOptions from the --farm flag family (None = no farm)."""
    if getattr(args, "farm", None) is None:
        return None
    from repro.farm import FarmOptions

    options = FarmOptions(workers=args.farm)
    if getattr(args, "farm_bind", None):
        options.host = args.farm_bind
    if getattr(args, "farm_port", None) is not None:
        options.port = args.farm_port
    if getattr(args, "farm_lease_ttl", None) is not None:
        options.lease_ttl = args.farm_lease_ttl
    if getattr(args, "farm_heartbeat", None) is not None:
        options.heartbeat_interval = args.farm_heartbeat
    if getattr(args, "farm_heartbeat_timeout", None) is not None:
        options.heartbeat_timeout = args.farm_heartbeat_timeout
    if getattr(args, "farm_join_grace", None) is not None:
        options.join_grace = args.farm_join_grace
    if getattr(args, "farm_max_reissues", None) is not None:
        options.max_reissues = args.farm_max_reissues
    if getattr(args, "farm_worker_journals", None):
        options.worker_journal_dir = args.farm_worker_journals
    options.announce = lambda host, port: print(
        f"# farm: coordinating on {host}:{port} (attach workers with: "
        f"repro farm work --connect {host}:{port})",
        file=sys.stderr,
    )
    return options


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.resilience import (
        FaultInjector,
        RunJournal,
        default_manifest_path,
        load_manifest,
        write_manifest,
    )

    experiment = args.experiment
    if args.resume:
        # The manifest restores the run's identity (experiment, scale,
        # journal, cache); execution knobs (--jobs/--timeout/--retries)
        # come from *this* invocation, so a resume may change them.
        manifest = load_manifest(args.resume)
        experiment = manifest["experiment"]
        saved = manifest.get("options", {})
        if args.slots is None:
            args.slots = saved.get("slots")
        if args.seeds is None:
            args.seeds = saved.get("seeds")
        if not args.journal:
            args.journal = manifest["journal"]
        if not args.cache_dir and saved.get("cache_dir"):
            args.cache_dir = saved["cache_dir"]
        if saved.get("no_cache"):
            args.no_cache = True
    if experiment is None:
        print(
            "run needs an experiment id (or --resume MANIFEST)",
            file=sys.stderr,
        )
        return 2

    progress = None
    if args.progress:
        progress = lambda line: print(line, file=sys.stderr)  # noqa: E731
    journal = RunJournal(args.journal) if args.journal else None
    injector = (
        FaultInjector.parse(args.inject_faults)
        if args.inject_faults
        else None
    )
    try:
        result = run_experiment(
            experiment,
            n_slots=args.slots,
            seeds=args.seeds,
            jobs=args.jobs,
            cache_dir=_sweep_cache_dir(args),
            progress=progress,
            resilience=_resilience_options(args),
            journal=journal,
            fault_injector=injector,
            engine=args.engine,
            trace_backend=args.trace_backend,
            trace_reuse=args.trace_reuse or None,
            farm=_farm_options(args),
        )
    except SweepInterrupted as exc:
        print(f"# interrupted: {exc}", file=sys.stderr)
        if args.journal:
            manifest_path = default_manifest_path(args.journal)
            write_manifest(
                manifest_path,
                experiment=experiment,
                journal=args.journal,
                options={
                    "slots": args.slots,
                    "seeds": list(args.seeds) if args.seeds else None,
                    "cache_dir": args.cache_dir,
                    "no_cache": bool(args.no_cache),
                },
                completed=exc.completed,
                total=exc.total,
            )
            print(
                f"# resume with: repro run --resume {manifest_path}",
                file=sys.stderr,
            )
        return 130
    except SweepExecutionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        partial = exc.result
        if partial is not None and partial.points:
            print(
                f"# partial result "
                f"({len(exc.failures)} cells quarantined):"
            )
            print(partial.format_table())
            print(f"# {partial.stats.summary()}")
        return 1
    if isinstance(result, SweepResult):
        print(f"# {experiment}: {describe_experiment(experiment)}")
        print(result.format_table())
        print(f"# {result.stats.summary()}")
        if args.plot:
            from repro.viz import render_sweep

            print()
            print(render_sweep(result))
        if args.out:
            result.to_csv(args.out)
            print(f"# wrote {args.out}")
    elif hasattr(result, "format_table"):
        print(f"# {experiment}: {describe_experiment(experiment)}")
        print(result.format_table())
    else:
        scenario, outcome = result
        print(f"# {scenario.name} ({scenario.theorem})")
        print(f"target policy   : {scenario.target_policy}")
        print(f"predicted ratio : {scenario.predicted_ratio:.4f}")
        print(f"measured ratio  : {outcome.ratio:.4f}")
        print(f"notes           : {scenario.notes}")
    return 0


def _cmd_certify(args: argparse.Namespace) -> int:
    """Run the Theorem 7 mapping certificate on an adversarial trace."""
    from repro.analysis.mapping import certify_lwd
    from repro.opt.scripted import ScriptedPolicy

    builder = ALL_SCENARIOS.get(args.theorem)
    if builder is None:
        print(
            f"unknown theorem {args.theorem!r}; known: "
            + ", ".join(ALL_SCENARIOS),
            file=sys.stderr,
        )
        return 2
    kwargs = {"buffer_size": args.buffer}
    if args.theorem not in {"thm6", "thm11"}:
        kwargs["k"] = args.k
    scenario = builder(**kwargs)
    if scenario.by_value or scenario.config.speedup != 1:
        print(
            "the Theorem 7 certificate applies to processing-model "
            "scenarios with C = 1",
            file=sys.stderr,
        )
        return 2
    report = certify_lwd(scenario.trace, scenario.config, ScriptedPolicy())
    print(f"# Theorem 7 certificate on {scenario.name}")
    print(report.summary())
    for violation in report.violations:
        print(f"  {violation}")
    return 0 if report.certified else 1


def _cmd_probe(args: argparse.Namespace) -> int:
    """Probe a value-model policy against the exhaustive true OPT."""
    from repro.analysis.conjecture import adversarial_search, probe_policy

    report = probe_policy(
        args.policy, trials=args.trials, seed=args.seed
    )
    print(report.summary())
    if args.climb:
        found = adversarial_search(
            args.policy,
            restarts=args.restarts,
            steps_per_restart=args.steps,
            seed=args.seed,
        )
        print(
            f"hill-climb worst ratio: {found.ratio:.4f} "
            f"(instance: {found.arrivals})"
        )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Generate the full reproduction report."""
    from repro.experiments.report import ReportOptions, write_report

    options = ReportOptions(
        n_slots=args.slots,
        seeds=tuple(args.seeds),
        include_panels=args.panels,
        jobs=args.jobs,
        cache_dir=_sweep_cache_dir(args),
        progress=(
            (lambda line: print(line, file=sys.stderr))
            if args.progress
            else None
        ),
        engine=args.engine or "reference",
        trace_backend=args.trace_backend or "object",
        trace_reuse=bool(args.trace_reuse),
        farm=_farm_options(args),
    )
    write_report(args.out, options)
    print(f"# wrote {args.out}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run pinned perf panels; write and optionally gate a report."""
    from repro.bench import (
        PANELS,
        compare_reports,
        compare_speedup,
        format_obs_report,
        format_report,
        load_report,
        run_bench,
        run_obs_bench,
        select_panels,
        write_report,
    )

    if args.min_speedup is not None and not args.baseline:
        print("--min-speedup requires --baseline", file=sys.stderr)
        return 2

    if args.list:
        for name, panel in PANELS.items():
            print(
                f"{name:26s} {panel.model:10s} {panel.workload:11s} "
                f"n={panel.n_ports:<3d} B={panel.buffer_size:<4d} "
                f"slots={panel.n_slots}"
            )
        return 0

    if args.pipeline:
        from repro.bench import (
            PIPELINE_PANELS,
            format_pipeline_report,
            run_pipeline_bench,
        )

        panels = select_panels(args.panels or list(PIPELINE_PANELS))
        accelerated = args.pipeline_mode != "baseline"
        tag = args.tag
        if tag == "local":
            tag = "pipeline" if accelerated else "pipeline_base"
        report = run_pipeline_bench(
            panels,
            tag=tag,
            accelerated=accelerated,
            slots_scale=args.slots_scale,
            repeats=args.repeats,
            progress=lambda line: print(line, file=sys.stderr),
        )
        print(format_pipeline_report(report))
        path = write_report(report, args.out_dir)
        print(f"# wrote {path}")
        if args.baseline:
            baseline = load_report(args.baseline)
            if args.min_speedup is not None:
                shortfalls = compare_speedup(
                    report,
                    baseline,
                    min_speedup=args.min_speedup,
                    panels=args.speedup_panels,
                    tolerance=args.max_regression,
                )
                if shortfalls:
                    print(
                        f"# SPEEDUP SHORTFALL vs {args.baseline} "
                        f"(floor {args.min_speedup:g}x - "
                        f"{args.max_regression:.0%}):",
                        file=sys.stderr,
                    )
                    for shortfall in shortfalls:
                        print(f"#   {shortfall}", file=sys.stderr)
                    return 1
                print(
                    f"# pipeline speedup >= {args.min_speedup:g}x "
                    f"(-{args.max_regression:.0%} fence) vs "
                    f"{args.baseline}"
                )
                return 0
            regressions = compare_reports(
                report, baseline, max_regression=args.max_regression
            )
            if regressions:
                print(
                    f"# REGRESSION vs {args.baseline}:", file=sys.stderr
                )
                for regression in regressions:
                    print(f"#   {regression}", file=sys.stderr)
                return 1
            print(f"# no regression vs {args.baseline}")
        return 0

    panels = select_panels(args.panels)
    if args.obs_overhead:
        report = run_obs_bench(
            panels,
            tag=args.tag if args.tag != "local" else "obs",
            slots_scale=args.slots_scale,
            progress=lambda line: print(line, file=sys.stderr),
        )
        print(format_obs_report(report))
        path = write_report(report, args.out_dir)
        print(f"# wrote {path}")
        return 0
    report = run_bench(
        panels,
        tag=args.tag,
        mode=args.mode,
        slots_scale=args.slots_scale,
        repeats=args.repeats,
        progress=lambda line: print(line, file=sys.stderr),
    )
    print(format_report(report))
    path = write_report(report, args.out_dir)
    print(f"# wrote {path}")

    if args.baseline:
        baseline = load_report(args.baseline)
        if args.min_speedup is not None:
            # Speedup floor (vectorized-engine acceptance): every gated
            # panel must beat the baseline by min_speedup, with the
            # same fractional fence as the regression gate.
            shortfalls = compare_speedup(
                report,
                baseline,
                min_speedup=args.min_speedup,
                panels=args.speedup_panels,
                tolerance=args.max_regression,
            )
            if shortfalls:
                print(
                    f"# SPEEDUP SHORTFALL vs {args.baseline} "
                    f"(floor {args.min_speedup:g}x - "
                    f"{args.max_regression:.0%}):",
                    file=sys.stderr,
                )
                for shortfall in shortfalls:
                    print(f"#   {shortfall}", file=sys.stderr)
                return 1
            print(
                f"# speedup >= {args.min_speedup:g}x "
                f"(-{args.max_regression:.0%} fence) vs {args.baseline}"
            )
            return 0
        regressions = compare_reports(
            report, baseline, max_regression=args.max_regression
        )
        if regressions:
            print(
                f"# REGRESSION vs {args.baseline} "
                f"(>{args.max_regression:.0%} slower):",
                file=sys.stderr,
            )
            for regression in regressions:
                print(f"#   {regression}", file=sys.stderr)
            return 1
        print(f"# no regression vs {args.baseline}")
    return 0


def _cmd_golden(args: argparse.Namespace) -> int:
    """Check or regenerate the golden decision-stream fixture."""
    from repro.goldens import (
        DEFAULT_GOLDEN_PATH,
        check_goldens,
        update_goldens,
    )

    if args.path is None:
        args.path = DEFAULT_GOLDEN_PATH
    if args.update:
        path = update_goldens(args.path, panel_names=args.panels)
        print(f"# wrote {path}")
        return 0
    engines = ("reference", "vectorized")
    if args.engine:
        engines = (args.engine,)
    problems = check_goldens(
        args.path, panel_names=args.panels, engines=engines
    )
    if problems:
        print(f"# GOLDEN MISMATCH vs {args.path}:", file=sys.stderr)
        for problem in problems:
            print(f"#   {problem}", file=sys.stderr)
        return 1
    print(
        f"# goldens hold on {'/'.join(engines)} "
        f"(fixture {args.path})"
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Record a bench panel to JSONL, or replay-verify a recorded file."""
    from repro.obs import replay_trace

    if args.verify:
        result = replay_trace(args.verify)
        print(f"# {args.verify}")
        print(result.summary())
        result.verify()
        print(
            "# verified: conservation laws hold and replayed metrics are "
            "byte-equal to the recorded run"
        )
        return 0

    if not args.scenario or not args.out:
        print(
            "trace needs either --verify FILE or --scenario PANEL "
            "--out FILE",
            file=sys.stderr,
        )
        return 2
    from repro.bench import PANELS
    from repro.obs import record_trace
    from repro.policies import make_policy

    panel = PANELS.get(args.scenario)
    if panel is None:
        print(
            f"unknown bench panel {args.scenario!r}; known: "
            + ", ".join(PANELS),
            file=sys.stderr,
        )
        return 2
    policy_name = args.policy or panel.policies[0]
    config = panel.config()
    trace = panel.trace(args.slots_scale)
    metrics = record_trace(
        make_policy(policy_name),
        trace,
        config,
        args.out,
        header={
            "panel": panel.name,
            "slots_scale": args.slots_scale,
            "seed": panel.seed,
        },
    )
    print(
        f"# recorded {panel.name} [{policy_name}] -> {args.out}: "
        f"{metrics.slots_elapsed} slots, {metrics.arrived} arrivals, "
        f"{metrics.transmitted_packets} transmitted"
    )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Run a sweep experiment and print its hot-stage breakdown."""
    progress = None
    if args.progress:
        progress = lambda line: print(line, file=sys.stderr)  # noqa: E731
    result = run_experiment(
        args.experiment,
        n_slots=args.slots,
        seeds=args.seeds,
        jobs=args.jobs,
        cache_dir=None,  # caching would hide the cost being measured
        progress=progress,
        engine=args.engine,
        trace_backend=args.trace_backend,
        trace_reuse=args.trace_reuse or None,
    )
    if not isinstance(result, SweepResult):
        print(
            f"profile applies to sweep experiments (fig5-1..fig5-9); "
            f"{args.experiment!r} is a single replay",
            file=sys.stderr,
        )
        return 2
    stats = result.stats
    print(f"# {args.experiment}: {describe_experiment(args.experiment)}")
    print(f"# {stats.summary()}")
    total = sum(stats.stage_seconds.values())
    ranked = sorted(
        stats.stage_seconds.items(), key=lambda item: item[1], reverse=True
    )
    print(f"{'stage':12s} {'seconds':>10s} {'share':>7s}")
    for index, (name, seconds) in enumerate(ranked):
        share = seconds / total if total > 0 else 0.0
        flag = "  <- dominant" if index == 0 and total > 0 else ""
        print(f"{name:12s} {seconds:10.4f} {share:6.1%}{flag}")
    overhead = stats.elapsed_seconds - total
    print(f"{'other':12s} {max(overhead, 0.0):10.4f}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    """Verify or garbage-collect the sweep result cache."""
    from pathlib import Path

    from repro.analysis.cache import SweepCache, default_cache_dir

    root = Path(args.cache_dir) if args.cache_dir else default_cache_dir()
    cache = SweepCache(root)
    if args.action == "verify":
        report = cache.verify()
        print(f"# {root}: {report.summary()}")
        for path in report.corrupt:
            print(f"corrupt: {path}")
        return 0 if report.clean else 1
    report = cache.gc()
    print(f"# {root}: {report.summary()}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    """Run the static analyzer; exit 0 clean, 1 findings, 2 bad usage."""
    from repro.check import all_rules, run_check

    if args.list_rules:
        for entry in all_rules():
            if entry.kind == "project":
                scope = "project"
            else:
                scope = ",".join(entry.scope) if entry.scope else "all modules"
            print(f"{entry.code} {entry.name:28s} [{scope}]")
            print(f"      {entry.summary}")
        return 0
    codes = None
    if args.rules:
        codes = [
            code.strip().upper()
            for chunk in args.rules
            for code in chunk.split(",")
            if code.strip()
        ]
    try:
        report = run_check(
            args.paths,
            rules=codes,
            fix_suppressions=args.fix_suppressions,
            project=args.project,
        )
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.format_human())
    return report.exit_code()


def _cmd_scenario(args: argparse.Namespace) -> int:
    builder = ALL_SCENARIOS.get(args.theorem)
    if builder is None:
        print(
            f"unknown theorem {args.theorem!r}; known: "
            + ", ".join(ALL_SCENARIOS),
            file=sys.stderr,
        )
        return 2
    kwargs = {}
    if args.theorem in {"thm6", "thm11"}:
        kwargs["buffer_size"] = args.buffer
    else:
        kwargs["k"] = args.k
        kwargs["buffer_size"] = args.buffer
    scenario = builder(**kwargs)
    outcome = run_scenario(scenario)
    print(f"# {scenario.name} ({scenario.theorem})")
    print(f"target policy   : {scenario.target_policy}")
    print(f"predicted ratio : {scenario.predicted_ratio:.4f}")
    print(f"measured ratio  : {outcome.ratio:.4f}")
    print(f"notes           : {scenario.notes}")
    return 0


def _parse_endpoint(text: str) -> tuple:
    """Split ``HOST:PORT`` (the --connect argument)."""
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ConfigError(
            f"expected HOST:PORT, got {text!r} (e.g. 127.0.0.1:7787)"
        )
    try:
        return host, int(port)
    except ValueError as exc:
        raise ConfigError(
            f"bad port in {text!r}: {port!r} is not an integer"
        ) from exc


def _cmd_farm_serve(args: argparse.Namespace) -> int:
    """Run a coordinator that waits for externally attached workers.

    Sugar over ``repro run --farm``: binds a fixed, announceable port,
    spawns no local workers by default, and waits ``--join-grace``
    seconds for a fleet before falling back to local execution.
    """
    run_args = argparse.Namespace(
        experiment=args.experiment,
        resume=None,
        slots=args.slots,
        seeds=args.seeds,
        out=args.out,
        plot=False,
        engine=None,
        trace_backend=None,
        trace_reuse=False,
        jobs=1,
        cache_dir=args.cache_dir,
        no_cache=args.no_cache,
        progress=args.progress,
        timeout=None,
        retries=args.retries,
        journal=args.journal,
        inject_faults=args.inject_faults,
        farm=args.workers,
        farm_bind=args.bind,
        farm_port=args.port,
        farm_lease_ttl=args.lease_ttl,
        farm_heartbeat=None,
        farm_heartbeat_timeout=None,
        farm_join_grace=args.join_grace,
        farm_max_reissues=args.max_reissues,
        farm_worker_journals=args.worker_journals,
    )
    return _cmd_run(run_args)


def _cmd_farm_work(args: argparse.Namespace) -> int:
    """Attach one worker to a running coordinator and serve leases."""
    from repro.farm import FarmWorker
    from repro.resilience import FaultInjector

    host, port = _parse_endpoint(args.connect)
    injector = (
        FaultInjector.parse(args.inject_faults)
        if args.inject_faults
        else FaultInjector.from_env()
    )
    worker = FarmWorker(
        host,
        port,
        name=args.name,
        injector=injector,
        journal_path=args.journal,
    )
    cells = worker.run()
    print(f"# worker {worker.name}: {cells} cells computed", file=sys.stderr)
    return 0


def _cmd_farm_status(args: argparse.Namespace) -> int:
    """Snapshot a running farm over its own socket."""
    import json
    import socket

    from repro.farm import protocol

    host, port = _parse_endpoint(args.connect)
    try:
        sock = socket.create_connection((host, port), timeout=args.timeout)
    except OSError as exc:
        print(
            f"error: no farm at {host}:{port}: {exc}", file=sys.stderr
        )
        return 1
    stream = protocol.MessageStream(sock)
    try:
        stream.send(protocol.status_query())
        try:
            reply = stream.recv(timeout=args.timeout)
        except socket.timeout:
            reply = None
    finally:
        stream.close()
    if reply is None or reply.get("t") != "status":
        print(
            f"error: {host}:{port} did not answer the status query "
            f"(not a farm coordinator?)",
            file=sys.stderr,
        )
        return 1
    reply.pop("t", None)
    if args.format == "json":
        print(json.dumps(reply, indent=2, sort_keys=True))
        return 0
    cells = reply.get("cells") or {}
    print(
        f"# farm {reply.get('endpoint', args.connect)}: "
        f"{reply.get('experiment') or '?'} [{reply.get('state', '?')}] "
        f"{cells.get('done', 0)}/{cells.get('total', '?')} cells"
    )
    for worker in reply.get("workers") or []:
        state = "live" if worker.get("live") else "LOST"
        busy = "busy" if worker.get("busy") else "idle"
        print(
            f"worker {worker.get('name'):16s} {state:4s} {busy:4s} "
            f"last beat {worker.get('beat_age', '?')}s ago"
        )
    ledger = reply.get("ledger") or {}
    interesting = {k: v for k, v in ledger.items() if v}
    if interesting:
        print(
            "# ledger: "
            + ", ".join(f"{k}={v}" for k, v in sorted(interesting.items()))
        )
    return 0


def _cmd_farm_merge(args: argparse.Namespace) -> int:
    """Fold coordinator + worker journals into one canonical journal."""
    from repro.farm import merge_run_journals

    report = merge_run_journals(args.journals, out=args.out)
    if args.format == "json":
        import json

        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    print(
        f"# merged {len(report['sources'])} journals: "
        f"{report['cells']} cells, {report['duplicates']} duplicate "
        f"recordings (all digest-equal)"
    )
    print(f"# canonical digest: {report['digest']}")
    if report["out"]:
        print(f"# wrote {report['out']}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="shmem-switch",
        description=(
            "Shared-memory switch buffer management (ICDCS 2014 "
            "reproduction): run experiments and validations"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments").set_defaults(
        func=_cmd_list
    )
    sub.add_parser("policies", help="list policies").set_defaults(
        func=_cmd_policies
    )

    run_parser = sub.add_parser("run", help="run an experiment by id")
    run_parser.add_argument(
        "experiment", nargs="?", default=None,
        help="e.g. fig5-1 or thm6 (optional with --resume)",
    )
    run_parser.add_argument(
        "--slots", type=int, default=None,
        help="simulation length in slots (Fig. 5 panels)",
    )
    run_parser.add_argument(
        "--seeds", type=int, nargs="+", default=None,
        help="replication seeds (Fig. 5 panels)",
    )
    run_parser.add_argument("--out", default=None, help="CSV output path")
    run_parser.add_argument(
        "--plot", action="store_true",
        help="render the sweep as an ASCII chart after the table",
    )
    run_parser.add_argument(
        "--engine", choices=("reference", "vectorized"), default=None,
        help=(
            "ALG-side simulation engine for Fig. 5 panels "
            "(decision-identical by contract; default reference)"
        ),
    )
    _add_pipeline_flags(run_parser)
    _add_sweep_engine_flags(run_parser)
    _add_resilience_flags(run_parser)
    _add_farm_flags(run_parser)
    run_parser.set_defaults(func=_cmd_run)

    cache_parser = sub.add_parser(
        "cache", help="verify or garbage-collect the sweep result cache"
    )
    cache_parser.add_argument(
        "action", choices=("verify", "gc"),
        help=(
            "verify: checksum every entry (exit 1 on corruption); "
            "gc: delete corrupt/legacy/quarantined entries"
        ),
    )
    cache_parser.add_argument(
        "--cache-dir", default=None,
        help=(
            "cache directory (default: $SHMEM_CACHE_DIR or "
            "results/sweep-cache)"
        ),
    )
    cache_parser.set_defaults(func=_cmd_cache)

    check_parser = sub.add_parser(
        "check",
        help=(
            "static analysis: determinism/hot-path/policy-API/IO/"
            "concurrency/wire-conformance rules"
        ),
    )
    check_parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    check_parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="output format (default human; json is the CI artifact)",
    )
    check_parser.add_argument(
        "--project", action=argparse.BooleanOptionalAction, default=True,
        help=(
            "run the cross-module phase (RC5xx lock-set + RC6xx wire "
            "conformance) over the whole analyzed tree (default on; "
            "--no-project = per-module rules only)"
        ),
    )
    check_parser.add_argument(
        "--rules", action="append", default=None, metavar="RCxxx",
        help=(
            "restrict to these rule codes (comma-separated; "
            "repeatable)"
        ),
    )
    check_parser.add_argument(
        "--fix-suppressions", action="store_true",
        help="delete stale allow[] pragmas (RC902) from the files",
    )
    check_parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    check_parser.set_defaults(func=_cmd_check)

    scen_parser = sub.add_parser(
        "scenario", help="run an adversarial construction at custom sizes"
    )
    scen_parser.add_argument(
        "theorem",
        help="thm1/thm3/thm4/thm5/thm6/thm9/thm10/thm11/greedy",
    )
    scen_parser.add_argument("--k", type=int, default=12)
    scen_parser.add_argument("--buffer", type=int, default=240)
    scen_parser.set_defaults(func=_cmd_scenario)

    certify_parser = sub.add_parser(
        "certify",
        help="run the Theorem 7 mapping certificate on a theorem trace",
    )
    certify_parser.add_argument(
        "theorem", help="a processing-model construction, e.g. thm4 or thm6"
    )
    certify_parser.add_argument("--k", type=int, default=9)
    certify_parser.add_argument("--buffer", type=int, default=108)
    certify_parser.set_defaults(func=_cmd_certify)

    probe_parser = sub.add_parser(
        "probe",
        help="probe a value-model policy against the exhaustive true OPT",
    )
    probe_parser.add_argument("policy", help="e.g. MRD, MVD, LQD-V, Greedy")
    probe_parser.add_argument("--trials", type=int, default=200)
    probe_parser.add_argument("--seed", type=int, default=0)
    probe_parser.add_argument(
        "--climb", action="store_true",
        help="also run the adversarial hill-climb",
    )
    probe_parser.add_argument("--restarts", type=int, default=5)
    probe_parser.add_argument("--steps", type=int, default=60)
    probe_parser.set_defaults(func=_cmd_probe)

    report_parser = sub.add_parser(
        "report",
        help="run everything and write a Markdown reproduction report",
    )
    report_parser.add_argument("--out", default="report.md")
    report_parser.add_argument("--slots", type=int, default=1000)
    report_parser.add_argument(
        "--seeds", type=int, nargs="+", default=[0]
    )
    report_parser.add_argument(
        "--panels", type=int, nargs="*", default=None,
        help="restrict to these Fig. 5 panels (default: all nine)",
    )
    report_parser.add_argument(
        "--engine", choices=("reference", "vectorized"), default=None,
        help="ALG-side simulation engine for the Fig. 5 panels",
    )
    _add_pipeline_flags(report_parser)
    _add_sweep_engine_flags(report_parser)
    _add_farm_flags(report_parser)
    report_parser.set_defaults(func=_cmd_report)

    bench_parser = sub.add_parser(
        "bench",
        help="run pinned performance panels and write BENCH_<tag>.json",
    )
    bench_parser.add_argument(
        "--tag", default="local",
        help="report tag; output file is BENCH_<tag>.json (default local)",
    )
    bench_parser.add_argument(
        "--out-dir", default="benchmarks",
        help="directory for the report (default benchmarks/)",
    )
    bench_parser.add_argument(
        "--panels", nargs="*", default=None,
        help="panel names, or small / large / all (default all)",
    )
    bench_parser.add_argument(
        "--mode", choices=("fast", "naive", "vectorized"), default="fast",
        help=(
            "engine/selector to time: the reference engine's fast or "
            "naive selector, or the columnar vectorized engine "
            "(default fast)"
        ),
    )
    bench_parser.add_argument(
        "--slots-scale", type=float, default=1.0,
        help="multiply every panel's slot count (recorded in the report)",
    )
    bench_parser.add_argument(
        "--repeats", type=int, default=1,
        help=(
            "run each panel this many times and report the best "
            "throughput (default 1; CI gates should use >= 3)"
        ),
    )
    bench_parser.add_argument(
        "--baseline", default=None,
        help="gate against this BENCH_*.json; exit 1 on regression",
    )
    bench_parser.add_argument(
        "--max-regression", type=float, default=0.25,
        help="allowed fractional slots/s drop vs baseline (default 0.25)",
    )
    bench_parser.add_argument(
        "--min-speedup", type=float, default=None,
        help=(
            "require every gated panel to beat the --baseline report "
            "by this factor (25%%-fence style: the effective floor is "
            "MIN_SPEEDUP * (1 - --max-regression)); exit 1 on shortfall"
        ),
    )
    bench_parser.add_argument(
        "--speedup-panels", nargs="*", default=None,
        help=(
            "restrict the --min-speedup gate to these panels "
            "(default: every panel present in both reports)"
        ),
    )
    bench_parser.add_argument(
        "--list", action="store_true",
        help="list the pinned panels and exit",
    )
    bench_parser.add_argument(
        "--pipeline", action="store_true",
        help=(
            "measure end-to-end sweep cells (trace gen + policies + "
            "OPT surrogate) instead of the raw slot loop; default "
            "panels are the large-n pipeline set"
        ),
    )
    bench_parser.add_argument(
        "--pipeline-mode", choices=("accelerated", "baseline"),
        default="accelerated",
        help=(
            "accelerated: columnar traces + reuse + vectorized OPT; "
            "baseline: object traces regenerated per cell + reference "
            "OPT (the tracked pre-pipeline state)"
        ),
    )
    bench_parser.add_argument(
        "--obs-overhead", action="store_true",
        help=(
            "measure JSONL event-recording overhead instead of raw "
            "throughput (writes BENCH_obs.json by default)"
        ),
    )
    bench_parser.set_defaults(func=_cmd_bench)

    golden_parser = sub.add_parser(
        "golden",
        help=(
            "check the committed decision-stream goldens on both "
            "engines, or regenerate them"
        ),
    )
    golden_parser.add_argument(
        "--check", action="store_true",
        help="verify the fixture (the default action)",
    )
    golden_parser.add_argument(
        "--update", action="store_true",
        help="recompute the fixture on the reference engine and write it",
    )
    golden_parser.add_argument(
        "--path", default=None,
        help="fixture path (default benchmarks/GOLDEN_streams.json)",
    )
    golden_parser.add_argument(
        "--panels", nargs="*", default=None,
        help="restrict to these bench panels (default: all committed)",
    )
    golden_parser.add_argument(
        "--engine", choices=("reference", "vectorized"), default=None,
        help="check a single engine instead of both",
    )
    golden_parser.set_defaults(func=_cmd_golden)

    trace_parser = sub.add_parser(
        "trace",
        help="record a bench panel as a JSONL event trace, or verify one",
    )
    trace_parser.add_argument(
        "--scenario", default=None,
        help="bench panel to record (see `repro bench --list`)",
    )
    trace_parser.add_argument(
        "--policy", default=None,
        help="policy to drive (default: the panel's first pinned policy)",
    )
    trace_parser.add_argument(
        "--out", default=None, help="output JSONL path for recording"
    )
    trace_parser.add_argument(
        "--slots-scale", type=float, default=1.0,
        help="scale the panel's slot count (recorded in the header)",
    )
    trace_parser.add_argument(
        "--verify", default=None, metavar="FILE",
        help=(
            "replay FILE, check conservation laws, and require replayed "
            "metrics byte-equal to the recorded footer"
        ),
    )
    trace_parser.set_defaults(func=_cmd_trace)

    profile_parser = sub.add_parser(
        "profile",
        help="run a sweep experiment and print per-stage timings",
    )
    profile_parser.add_argument("experiment", help="e.g. fig5-1")
    profile_parser.add_argument(
        "--slots", type=int, default=None,
        help="simulation length in slots",
    )
    profile_parser.add_argument(
        "--seeds", type=int, nargs="+", default=None,
        help="replication seeds",
    )
    profile_parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (stage times sum worker wall-clock)",
    )
    profile_parser.add_argument(
        "--progress", action="store_true",
        help="report per-cell progress on stderr",
    )
    profile_parser.add_argument(
        "--engine", choices=("reference", "vectorized"), default=None,
        help="ALG-side simulation engine (default reference)",
    )
    _add_pipeline_flags(profile_parser)
    profile_parser.set_defaults(func=_cmd_profile)

    farm_parser = sub.add_parser(
        "farm",
        help=(
            "distributed sweep farm: serve a coordinator, attach "
            "workers, query status, merge journals (docs/FARM.md)"
        ),
    )
    farm_sub = farm_parser.add_subparsers(dest="farm_command", required=True)

    serve_parser = farm_sub.add_parser(
        "serve",
        help=(
            "run a coordinator on a fixed port and wait for external "
            "workers (repro farm work --connect HOST:PORT)"
        ),
    )
    serve_parser.add_argument(
        "experiment", help="a sweep experiment id, e.g. fig5-1"
    )
    serve_parser.add_argument(
        "--port", type=int, default=7787,
        help="listen port for workers (default 7787)",
    )
    serve_parser.add_argument(
        "--bind", default="0.0.0.0",
        help="listen address (default 0.0.0.0: accept remote workers)",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=0,
        help=(
            "local worker subprocesses to spawn alongside external "
            "ones (default 0: external only)"
        ),
    )
    serve_parser.add_argument(
        "--join-grace", type=float, default=60.0,
        help=(
            "seconds to wait for a first/replacement worker before "
            "falling back to local execution (default 60)"
        ),
    )
    serve_parser.add_argument(
        "--lease-ttl", type=float, default=None,
        help="per-lease completion deadline in seconds (default 30)",
    )
    serve_parser.add_argument(
        "--max-reissues", type=int, default=None,
        help=(
            "replacement leases per cell before local fallback "
            "(default 4)"
        ),
    )
    serve_parser.add_argument(
        "--worker-journals", default=None, metavar="DIR",
        help=(
            "directory for per-worker journals of *spawned* workers "
            "(merge with: repro farm merge)"
        ),
    )
    serve_parser.add_argument(
        "--slots", type=int, default=None,
        help="simulation length in slots",
    )
    serve_parser.add_argument(
        "--seeds", type=int, nargs="+", default=None,
        help="replication seeds",
    )
    serve_parser.add_argument("--out", default=None, help="CSV output path")
    serve_parser.add_argument(
        "--journal", default=None, metavar="FILE",
        help="coordinator journal (as repro run --journal)",
    )
    serve_parser.add_argument(
        "--retries", type=int, default=None,
        help="extra attempts per cell before quarantine (default 2)",
    )
    serve_parser.add_argument(
        "--inject-faults", default=None, metavar="SPEC",
        help=(
            "deterministic chaos spec, forwarded to spawned workers "
            "(see docs/RESILIENCE.md)"
        ),
    )
    serve_parser.add_argument(
        "--cache-dir", default=None,
        help="sweep result cache directory",
    )
    serve_parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the sweep result cache",
    )
    serve_parser.add_argument(
        "--progress", action="store_true",
        help="report per-cell progress on stderr",
    )
    serve_parser.set_defaults(func=_cmd_farm_serve)

    work_parser = farm_sub.add_parser(
        "work", help="attach one worker to a running coordinator"
    )
    work_parser.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="the coordinator endpoint printed by serve/run --farm",
    )
    work_parser.add_argument(
        "--name", default=None,
        help="registration name (default worker-<pid>); reconnects "
        "reuse it",
    )
    work_parser.add_argument(
        "--inject-faults", default=None, metavar="SPEC",
        help=(
            "deterministic chaos spec for this worker (default: "
            "$REPRO_FAULTS)"
        ),
    )
    work_parser.add_argument(
        "--journal", default=None, metavar="FILE",
        help=(
            "per-worker journal of computed cells, under the sweep "
            "identity from the coordinator (repro farm merge)"
        ),
    )
    work_parser.set_defaults(func=_cmd_farm_work)

    status_parser = farm_sub.add_parser(
        "status", help="snapshot a running farm (workers, cells, ledger)"
    )
    status_parser.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="the coordinator endpoint",
    )
    status_parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="output format (json prints the raw snapshot)",
    )
    status_parser.add_argument(
        "--timeout", type=float, default=5.0,
        help="connect/read timeout in seconds (default 5)",
    )
    status_parser.set_defaults(func=_cmd_farm_status)

    merge_parser = farm_sub.add_parser(
        "merge",
        help=(
            "fold coordinator + worker journals into one canonical "
            "journal, verifying duplicate cells are digest-equal"
        ),
    )
    merge_parser.add_argument(
        "journals", nargs="+", help="journal files to merge"
    )
    merge_parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the canonical merged journal here (atomic)",
    )
    merge_parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="report format",
    )
    merge_parser.set_defaults(func=_cmd_farm_merge)
    return parser


def _add_pipeline_flags(parser: argparse.ArgumentParser) -> None:
    """Trace-pipeline knobs shared by ``run``/``report``/``profile``.

    Like ``--engine`` they are execution-only: the columnar generators
    are byte-identical twins of the object generators, and trace reuse
    only skips regenerating identical traces — output bytes never
    change (docs/PIPELINE.md).
    """
    parser.add_argument(
        "--trace-backend", choices=("object", "columnar"), default=None,
        help=(
            "MMPP trace generator family for Fig. 5 panels "
            "(byte-identical streams; columnar feeds the vectorized "
            "engine without packet objects; default object)"
        ),
    )
    parser.add_argument(
        "--trace-reuse", action="store_true",
        help=(
            "generate each distinct trace once per sweep and replay it "
            "across cells that provably share it (B/C sweeps)"
        ),
    )


def _add_sweep_engine_flags(parser: argparse.ArgumentParser) -> None:
    """Parallel/caching knobs shared by ``run`` and ``report``.

    They configure the Fig. 5 sweep engine and are ignored by theorem
    replays (single deterministic traces). Parallel and cached runs are
    byte-identical to serial uncached runs — see docs/REPRODUCTION.md.
    """
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for sweep cells (0 = all cores; default 1)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help=(
            "sweep result cache directory (default: $SHMEM_CACHE_DIR or "
            "results/sweep-cache)"
        ),
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the sweep result cache for this run",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="report per-cell sweep progress on stderr",
    )


def _add_resilience_flags(parser: argparse.ArgumentParser) -> None:
    """Supervision/checkpoint knobs of ``run`` (docs/RESILIENCE.md).

    Like the sweep-engine flags they apply to Fig. 5 panels only; none
    of them changes the sweep's output bytes.
    """
    parser.add_argument(
        "--timeout", type=float, default=None,
        help=(
            "per-cell wall-clock budget in seconds (parallel runs only; "
            "default: none)"
        ),
    )
    parser.add_argument(
        "--retries", type=int, default=None,
        help=(
            "extra attempts per cell before it is quarantined "
            "(default 2)"
        ),
    )
    parser.add_argument(
        "--journal", default=None, metavar="FILE",
        help=(
            "append completed cells to this JSONL journal; an "
            "interrupted run (SIGINT/SIGTERM) exits 130 and writes "
            "FILE.manifest.json for --resume"
        ),
    )
    parser.add_argument(
        "--resume", default=None, metavar="MANIFEST",
        help=(
            "resume an interrupted run from its manifest, skipping "
            "every journaled cell"
        ),
    )
    parser.add_argument(
        "--inject-faults", default=None, metavar="SPEC",
        help=(
            "deterministic chaos spec for testing, e.g. "
            "'crash@0;hang@2;delay=0.2' (also: $REPRO_FAULTS; see "
            "docs/RESILIENCE.md)"
        ),
    )


def _add_farm_flags(parser: argparse.ArgumentParser) -> None:
    """Farm knobs of ``run``/``report`` (docs/FARM.md).

    ``--farm N`` turns the sweep farm on; like ``--jobs`` it is
    execution-only — farmed output is byte-identical to a local run.
    """
    parser.add_argument(
        "--farm", type=int, default=None, metavar="N",
        help=(
            "distribute sweep cells over N spawned socket workers "
            "(0 = externally attached workers only; default: no farm)"
        ),
    )
    parser.add_argument(
        "--farm-bind", default=None, metavar="HOST",
        help="coordinator listen address (default 127.0.0.1)",
    )
    parser.add_argument(
        "--farm-port", type=int, default=None,
        help=(
            "coordinator listen port for external workers "
            "(default: ephemeral)"
        ),
    )
    parser.add_argument(
        "--farm-lease-ttl", type=float, default=None,
        help="per-lease completion deadline in seconds (default 30)",
    )
    parser.add_argument(
        "--farm-heartbeat", type=float, default=None,
        help="worker heartbeat interval in seconds (default 0.5)",
    )
    parser.add_argument(
        "--farm-heartbeat-timeout", type=float, default=None,
        help=(
            "silence that declares a worker lost, in seconds "
            "(default 5)"
        ),
    )
    parser.add_argument(
        "--farm-join-grace", type=float, default=None,
        help=(
            "seconds to run with zero live workers before local "
            "fallback (default 10)"
        ),
    )
    parser.add_argument(
        "--farm-max-reissues", type=int, default=None,
        help=(
            "replacement leases per cell before local fallback "
            "(default 4)"
        ),
    )
    parser.add_argument(
        "--farm-worker-journals", default=None, metavar="DIR",
        help=(
            "directory for per-worker journals of spawned workers "
            "(merge with: repro farm merge)"
        ),
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
