"""Golden decision-stream fixtures for the pinned bench panels.

The differential suites pin the vectorized engine to the reference
engine *relative* to each other; goldens pin both to a committed
*absolute* fingerprint. Every ``repro.bench`` panel (including the
dynamic churn/split panels) is run at a small committed scale and
reduced to two sha256 digests per pinned policy:

* ``stream_sha256`` — a canonical rendering of the full observer event
  stream (slot framing, arrivals, decisions, push-outs, transmissions,
  idle fast-forwards). This is the engine's *decision stream*: any
  change to admission, victim selection (tie-breaks included),
  transmission order, or idle handling changes the digest.
* ``metrics_sha256`` — the canonical JSON of the final
  :meth:`~repro.core.metrics.SwitchMetrics.snapshot`. Fast-mode runs
  carry no observer (an attached observer routes the vectorized engine
  onto its per-packet slow path), so this is the digest that pins the
  *batched* hot path.

Sequence numbers are deliberately excluded from every token: they
depend on process-global draw interleaving and (in the vectorized fast
path) are not drawn at all — they are debugging identity, not model
state.

The committed fixture lives at :data:`DEFAULT_GOLDEN_PATH` and is
managed by ``repro golden --check`` / ``--update`` and by
``tests/test_golden_streams.py``.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.competitive import PolicySystem, run_system
from repro.core.errors import ConfigError
from repro.core.metrics import SwitchMetrics
from repro.obs.observer import PacketEvent, SlotObserver
from repro.policies import make_policy

#: Committed fixture location (repo-relative).
DEFAULT_GOLDEN_PATH = Path("benchmarks") / "GOLDEN_streams.json"

#: The committed scale: panels shrink to this fraction of their pinned
#: slot count, keeping a full eight-panel golden pass in CI-smoke
#: territory while still exercising congestion on every panel.
GOLDEN_SLOTS_SCALE = 0.1

SCHEMA_VERSION = 2


class DecisionStreamHasher(SlotObserver):
    """Fold the observer event stream into one sha256.

    Every hook renders a canonical one-line token and feeds it to the
    hash; the hex digest is therefore a fingerprint of the complete
    observable run. Tokens carry packet *state* (port, work, value,
    arrival slot, residual) but never sequence numbers — see the module
    docstring.
    """

    __slots__ = ("_hash", "events")

    def __init__(self) -> None:
        self._hash = hashlib.sha256()
        #: Number of tokens folded in (a cheap sanity signal for tests).
        self.events = 0

    def _feed(self, token: str) -> None:
        self._hash.update(token.encode("ascii"))
        self.events += 1

    @staticmethod
    def _packet(event: PacketEvent) -> str:
        return (
            f"{event.port},{event.work},{event.value!r},"
            f"{event.arrival_slot},{event.residual}"
        )

    def hexdigest(self) -> str:
        return self._hash.hexdigest()

    def on_slot_begin(self, slot: int, n_arrivals: int) -> None:
        self._feed(f"B {slot} {n_arrivals}\n")

    def on_arrival(self, slot: int, packet: PacketEvent) -> None:
        self._feed(f"A {slot} {self._packet(packet)}\n")

    def on_decision(
        self, slot: int, action: str, victim_port: Optional[int]
    ) -> None:
        self._feed(f"D {slot} {action} {victim_port}\n")

    def on_push_out(self, slot: int, victim: PacketEvent) -> None:
        self._feed(f"P {slot} {self._packet(victim)}\n")

    def on_transmit(self, slot: int, packet: PacketEvent) -> None:
        self._feed(f"T {slot} {self._packet(packet)}\n")

    def on_flush(
        self, slot: int, dropped: Tuple[PacketEvent, ...]
    ) -> None:
        self._feed(f"F {slot} {len(dropped)}\n")
        for event in dropped:
            self._feed(f"f {slot} {self._packet(event)}\n")

    def on_port_state(
        self, slot: int, port: int, up: bool, reclaimed: Tuple[PacketEvent, ...]
    ) -> None:
        # Event-free runs never reach this hook, so pre-churn digests
        # are unaffected by its existence.
        self._feed(f"S {slot} {port} {int(up)} {len(reclaimed)}\n")
        for event in reclaimed:
            self._feed(f"s {slot} {self._packet(event)}\n")

    def on_idle(self, slot: int, n_slots: int) -> None:
        self._feed(f"I {slot} {n_slots}\n")

    def on_slot_end(self, slot: int, occupancy: int) -> None:
        self._feed(f"E {slot} {occupancy}\n")


def trace_digest(trace: object) -> str:
    """sha256 over canonical packet tokens, one line per packet.

    Works on both trace shapes without materializing anything: a
    :class:`~repro.traffic.trace.Trace` feeds its packet objects, a
    :class:`~repro.traffic.columnar.ColumnarTrace` walks its columns
    directly. A columnar twin generator is byte-identical to its object
    counterpart exactly when the two digests agree — this is the
    pinned half of the trace contract (the Hypothesis differential
    suite is the relative half). Tokens carry slot index, port, work,
    ``repr`` of the value, arrival slot, and the scripted-OPT tag
    canonicalized to ``-1``/``0``/``1``; port churn events (when the
    trace carries any) are digested after the packet lines, so a
    static trace's digest is unchanged by the churn extension.
    """
    hasher = hashlib.sha256()
    feed = hasher.update

    def feed_events() -> None:
        events = getattr(trace, "port_events", None)
        if not events:
            return
        for slot in sorted(events):
            for event in events[slot]:
                feed(
                    f"E {slot} {event.port} {int(event.up)}\n".encode(
                        "ascii"
                    )
                )

    offsets = getattr(trace, "offsets", None)
    if offsets is not None:
        ports = trace.ports  # type: ignore[attr-defined]
        works = trace.works  # type: ignore[attr-defined]
        values = trace.values  # type: ignore[attr-defined]
        opts = trace.opts  # type: ignore[attr-defined]
        arrivals = trace.arrivals  # type: ignore[attr-defined]
        n_slots = len(offsets) - 1
        feed(f"slots={n_slots}\n".encode("ascii"))
        for slot in range(n_slots):
            for j in range(offsets[slot], offsets[slot + 1]):
                arrival = arrivals[j] if arrivals is not None else slot
                opt = opts[j] if opts is not None else -1
                feed(
                    f"{slot} {ports[j]},{works[j]},{values[j]!r},"
                    f"{arrival},{opt}\n".encode("ascii")
                )
        feed_events()
        return hasher.hexdigest()
    slots = trace.slots  # type: ignore[attr-defined]
    feed(f"slots={len(slots)}\n".encode("ascii"))
    for slot, packets in enumerate(slots):
        for p in packets:
            opt = -1 if p.opt_accept is None else int(p.opt_accept)
            feed(
                f"{slot} {p.port},{p.work},{p.value!r},"
                f"{p.arrival_slot},{opt}\n".encode("ascii")
            )
    feed_events()
    return hasher.hexdigest()


def metrics_digest(metrics: SwitchMetrics) -> str:
    """sha256 of the canonical JSON of a full metrics snapshot.

    ``sort_keys`` plus JSON's ``repr``-based float rendering make the
    digest a stable function of the counter values alone.
    """
    canonical = json.dumps(
        metrics.snapshot(), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("ascii")).hexdigest()


def _run_hashed(
    panel, policy_name: str, slots_scale: float, engine: str
) -> Tuple[str, str, str]:
    """One observed run plus one fast-mode run of a panel policy.

    Returns ``(stream_sha256, metrics_sha256, fast_metrics_sha256)``.
    The observed run renders the decision stream (on the vectorized
    engine this takes its per-packet slow path); the unobserved run
    exercises the engine's fast mode, whose final metrics must digest
    identically — that equality is itself part of the check.
    """
    config = panel.config()
    trace = panel.trace(slots_scale)

    hasher = DecisionStreamHasher()
    observed = PolicySystem(config, make_policy(policy_name), engine=engine)
    observed_metrics = run_system(observed, trace, observer=hasher)

    fast = PolicySystem(config, make_policy(policy_name), engine=engine)
    fast_metrics = run_system(fast, trace)

    return (
        hasher.hexdigest(),
        metrics_digest(observed_metrics),
        metrics_digest(fast_metrics),
    )


def compute_goldens(
    panel_names: Optional[Sequence[str]] = None,
    *,
    slots_scale: float = GOLDEN_SLOTS_SCALE,
    engine: str = "reference",
) -> Dict[str, object]:
    """Compute the golden document for the selected bench panels.

    The committed fixture is computed on the reference engine (the
    oracle); ``engine="vectorized"`` recomputes the same document on the
    columnar engine, which :func:`check_goldens` uses to assert the
    engines' streams are byte-identical to the committed one.
    """
    from repro.bench import PANELS

    if panel_names is None:
        panel_names = list(PANELS)
    doc: Dict[str, object] = {
        "schema": SCHEMA_VERSION,
        "slots_scale": slots_scale,
        "engine": engine,
        "panels": {},
    }
    panels: Dict[str, object] = doc["panels"]  # type: ignore[assignment]
    for name in panel_names:
        panel = PANELS.get(name)
        if panel is None:
            raise ConfigError(
                f"unknown bench panel {name!r}; known: "
                + ", ".join(PANELS)
            )
        object_digest = trace_digest(panel.trace(slots_scale))
        columnar_digest = trace_digest(panel.columnar_trace(slots_scale))
        if columnar_digest != object_digest:
            raise ConfigError(
                f"{name}: columnar trace generator diverges from the "
                f"object generator ({columnar_digest[:12]} != "
                f"{object_digest[:12]})"
            )
        policies: Dict[str, Dict[str, str]] = {}
        for policy_name in panel.policies:
            stream, metrics, fast_metrics = _run_hashed(
                panel, policy_name, slots_scale, engine
            )
            if fast_metrics != metrics:
                raise ConfigError(
                    f"{name}/{policy_name}: fast-mode metrics diverge "
                    f"from the observed run on engine {engine!r} "
                    f"({fast_metrics[:12]} != {metrics[:12]})"
                )
            policies[policy_name] = {
                "stream_sha256": stream,
                "metrics_sha256": metrics,
            }
        panels[name] = {
            "trace_sha256": object_digest,
            "policies": policies,
        }
    return doc


def check_goldens(
    path: Path | str = DEFAULT_GOLDEN_PATH,
    *,
    panel_names: Optional[Sequence[str]] = None,
    engines: Sequence[str] = ("reference", "vectorized"),
) -> List[str]:
    """Recompute digests on every engine and diff against the fixture.

    Returns human-readable mismatch lines (empty means the fixture
    holds). Every engine in ``engines`` must reproduce the committed
    stream and metrics digests exactly — this is the absolute half of
    the oracle contract (the differential suites are the relative
    half).
    """
    committed = load_goldens(path)
    scale = float(committed["slots_scale"])
    want_panels: Mapping[str, Mapping] = committed["panels"]
    names = list(want_panels) if panel_names is None else list(panel_names)
    problems: List[str] = []
    for engine in engines:
        got = compute_goldens(names, slots_scale=scale, engine=engine)
        got_panels: Mapping[str, Mapping] = got["panels"]
        for name in names:
            want = want_panels.get(name)
            if want is None:
                problems.append(f"{name}: not in committed fixture")
                continue
            have_trace = got_panels[name]["trace_sha256"]
            if have_trace != want["trace_sha256"]:
                problems.append(
                    f"{name} [{engine}]: trace_sha256 "
                    f"{have_trace[:16]}... != committed "
                    f"{want['trace_sha256'][:16]}..."
                )
            for policy, want_digests in want["policies"].items():
                have = got_panels[name]["policies"].get(policy)
                if have is None:
                    problems.append(
                        f"{name}/{policy} [{engine}]: policy missing"
                    )
                    continue
                for key in ("stream_sha256", "metrics_sha256"):
                    if have[key] != want_digests[key]:
                        problems.append(
                            f"{name}/{policy} [{engine}]: {key} "
                            f"{have[key][:16]}... != committed "
                            f"{want_digests[key][:16]}..."
                        )
    return problems


def load_goldens(path: Path | str = DEFAULT_GOLDEN_PATH) -> Dict[str, object]:
    path = Path(path)
    if not path.exists():
        raise ConfigError(
            f"golden fixture {path} not found; create it with "
            f"`repro golden --update`"
        )
    with path.open("r", encoding="utf-8") as handle:
        doc = json.load(handle)
    if doc.get("schema") != SCHEMA_VERSION:
        raise ConfigError(
            f"golden fixture {path} has schema {doc.get('schema')!r}, "
            f"expected {SCHEMA_VERSION}"
        )
    return doc


def update_goldens(
    path: Path | str = DEFAULT_GOLDEN_PATH,
    *,
    panel_names: Optional[Sequence[str]] = None,
    slots_scale: float = GOLDEN_SLOTS_SCALE,
) -> Path:
    """Recompute the fixture on the reference engine and write it."""
    from repro.resilience import atomic_write_json

    doc = compute_goldens(panel_names, slots_scale=slots_scale)
    return atomic_write_json(Path(path), doc, indent=2)
