"""Dynamic-threshold admission policies for the shared-buffer scenarios.

Two policies from the dynamic shared-buffer literature, both non-push-out
threshold policies implemented purely against the public
:class:`~repro.core.switch.SwitchView` API (they pass ``repro check``
RC301-303 by construction, and fall back to the vectorized engine's
generic per-packet path because they are not exact fast-kernel types):

* :class:`DynamicThreshold` — the classic alpha-threshold ("Dynamic
  Threshold") scheme of Choudhury & Hahne: a packet for queue ``i`` is
  admitted while ``|Q_i|`` (its shared-slot share) is below ``alpha``
  times the *free* shared space. Self-tuning: thresholds fall as the
  buffer fills, deliberately holding back ``~1/(1 + alpha n)`` of the
  buffer as slack for newly active queues.

* :class:`Harmonic` — the rank-based harmonic threshold policy
  (PAPERS.md, arXiv:2511.06514): a queue whose length ranks ``r``-th
  largest may hold up to ``B / (r * H_n)`` packets. The policy is
  ``(2 + ln n)``-competitive against the optimal offline shared-buffer
  schedule; ``tests/test_harmonic_competitive.py`` pins the empirical
  ratio under that bound across seeded and adversarial workloads.

Both policies read only *shared-slot* quantities (``shared_queue_len``,
``shared_free``, ``shared_capacity``), so under a reserved + shared
:class:`~repro.core.config.BufferModel` split they govern the shared
pool while reservations stay unconditionally admissible — exactly the
SONiC buffer-model semantics. On the purely shared model the shared
quantities degenerate to plain queue lengths and free space.
"""

from __future__ import annotations

from repro._math import harmonic_number
from repro.core.errors import ConfigError
from repro.core.packet import Packet
from repro.core.switch import SwitchView
from repro.policies.base import ThresholdPolicy


class DynamicThreshold(ThresholdPolicy):
    """Alpha dynamic-threshold admission (Choudhury & Hahne).

    Accept a packet for queue ``i`` iff

    ``shared_queue_len(i) < alpha * shared_free``

    evaluated *before* the packet is placed. ``alpha`` trades utilization
    against fairness: large alpha approaches greedy sharing, small alpha
    approaches complete partitioning.
    """

    name = "DT"

    def __init__(self, alpha: float = 1.0) -> None:
        if not alpha > 0:
            raise ConfigError(f"DT needs alpha > 0, got {alpha}")
        self.alpha = float(alpha)

    def within_threshold(self, view: SwitchView, packet: Packet) -> bool:
        return view.shared_queue_len(packet.port) < (
            self.alpha * view.shared_free
        )

    def describe(self) -> str:
        return f"DT(alpha={self.alpha:g}) (non-push-out, dynamic threshold)"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DynamicThreshold(alpha={self.alpha!r})"


class Harmonic(ThresholdPolicy):
    """Rank-based harmonic thresholds, ``(2 + ln n)``-competitive.

    Order the queues by (shared) length, longest first. The queue holding
    the ``r``-th longest backlog may grow while

    ``(len + 1) * r * H_n <= shared_capacity``

    i.e. queue lengths are capped by the harmonic envelope
    ``B / (r * H_n)``, whose total over all ranks is exactly ``B``. The
    rank of the arriving packet's queue is computed against current
    lengths (ties resolve in the arrival's favour: only strictly longer
    queues outrank it), so the check is deterministic and engine-
    independent — both engines evaluate the same integers and one float
    product.
    """

    name = "Harmonic"

    def within_threshold(self, view: SwitchView, packet: Packet) -> bool:
        own = view.shared_queue_len(packet.port)
        # Rank r = 1 + number of strictly longer queues. Empty queues
        # never outrank (own >= 0), so scanning the non-empty ports is
        # exact and costs O(active), not O(n).
        rank = 1
        for port in view.nonempty_ports():
            if port != packet.port and view.shared_queue_len(port) > own:
                rank += 1
        h_n = harmonic_number(view.n_ports)
        return (own + 1) * rank * h_n <= view.shared_capacity

    def describe(self) -> str:
        return "Harmonic (non-push-out, rank-harmonic thresholds)"
