"""Buffer-management policies from the paper, plus the policy registry.

Processing model (Section III): NHST, NEST, NHDT, LQD, BPD, BPD1, LWD.
Value model (Section IV): Greedy, NEST, NHDT, NHST-V, LQD-V, MVD, MVD1, MRD.

Use :func:`make_policy` / :func:`available_policies` to construct policies
by the names used in the paper's figures.
"""

from repro.policies.base import (
    Policy,
    PolicyEntry,
    PushOutPolicy,
    ThresholdPolicy,
    available_policies,
    make_policy,
    policy_entry,
    register_policy,
)
from repro.policies.nonpushout import (
    NEST,
    NHDT,
    NHST,
    GreedyNonPushOut,
    NHSTValue,
)
from repro.policies.dynamic import DynamicThreshold, Harmonic
from repro.policies.extensions import LWD1, MRD1, NHDTW, RandomPushOut
from repro.policies.processing import BPD, BPD1, LQD, LWD
from repro.policies.value import MRD, MVD, MVD1, LQDValue

__all__ = [
    "BPD",
    "BPD1",
    "DynamicThreshold",
    "GreedyNonPushOut",
    "Harmonic",
    "LQD",
    "LQDValue",
    "LWD",
    "LWD1",
    "MRD1",
    "NHDTW",
    "RandomPushOut",
    "MRD",
    "MVD",
    "MVD1",
    "NEST",
    "NHDT",
    "NHST",
    "NHSTValue",
    "Policy",
    "PolicyEntry",
    "PushOutPolicy",
    "ThresholdPolicy",
    "available_policies",
    "make_policy",
    "policy_entry",
    "register_policy",
]


def _register_defaults() -> None:
    register_policy(
        "NHST",
        NHST,
        {"processing"},
        "static thresholds inversely proportional to required work "
        "(Theorem 1: kZ-competitive)",
    )
    register_policy(
        "NEST",
        NEST,
        {"processing", "value"},
        "equal static thresholds B/n — complete partitioning "
        "(Theorem 2: n-competitive)",
    )
    register_policy(
        "NHDT",
        NHDT,
        {"processing", "value"},
        "harmonic dynamic thresholds of Kesselman & Mansour "
        "(Theorem 3: ~(1/2)sqrt(k ln k) under heterogeneous work)",
    )
    register_policy(
        "NHST-V",
        NHSTValue,
        {"value"},
        "NHST with reversed thresholds for port-determined values "
        "(Section V-C)",
    )
    register_policy(
        "Greedy",
        GreedyNonPushOut,
        {"value"},
        "greedy non-push-out baseline (at least k-competitive in the "
        "value model)",
    )
    register_policy(
        "LQD",
        LQD,
        {"processing"},
        "Longest-Queue-Drop (Theorem 4: ~sqrt(k) under heterogeneous work)",
    )
    register_policy(
        "BPD",
        BPD,
        {"processing"},
        "Biggest-Packet-Drop (Theorem 5: at least ln k + gamma)",
    )
    register_policy(
        "BPD1",
        BPD1,
        {"processing"},
        "BPD that never empties a queue (Section V-B)",
    )
    register_policy(
        "LWD",
        LWD,
        {"processing"},
        "Longest-Work-Drop, the paper's main policy (Theorem 7: at most "
        "2-competitive)",
    )
    register_policy(
        "LQD-V",
        LQDValue,
        {"value"},
        "Longest-Queue-Drop in the value model (Theorem 9: ~cbrt(k))",
    )
    register_policy(
        "MVD",
        MVD,
        {"value"},
        "Minimal-Value-Drop (Theorem 10: at least (m-1)/2)",
    )
    register_policy(
        "MVD1",
        MVD1,
        {"value"},
        "MVD that never empties a queue (Section V-C)",
    )
    register_policy(
        "MRD",
        MRD,
        {"value"},
        "Maximal-Ratio-Drop, conjectured O(1)-competitive (Theorem 11: "
        "at least 4/3 for port-determined values)",
    )
    register_policy(
        "NHDT-W",
        NHDTW,
        {"processing"},
        "[extension] work-weighted NHDT — a candidate answer to the "
        "paper's open NHDT-generalization problem",
    )
    register_policy(
        "LWD1",
        LWD1,
        {"processing"},
        "[extension] LWD that never empties a queue (the BPD1/MVD1 "
        "refinement applied to the paper's main policy)",
    )
    register_policy(
        "MRD1",
        MRD1,
        {"value"},
        "[extension] MRD that never empties a queue",
    )
    register_policy(
        "Random",
        RandomPushOut,
        {"processing", "value"},
        "[extension] uniformly random victim — control baseline",
    )
    register_policy(
        "Harmonic",
        Harmonic,
        {"processing", "value"},
        "[scenario] rank-harmonic dynamic thresholds, (2 + ln n)-"
        "competitive for shared-buffer throughput (arXiv:2511.06514)",
    )
    register_policy(
        "DT",
        DynamicThreshold,
        {"processing", "value"},
        "[scenario] Choudhury-Hahne alpha dynamic threshold "
        "(alpha=1 default; SONiC-style shared-pool admission)",
    )


_register_defaults()
