"""Extension policies beyond the paper's line-up.

The paper leaves several threads hanging; this module picks them up:

* :class:`NHDTW` — the paper states *"it is unclear how to generalize
  NHDT to heterogeneous processing better; this remains an interesting
  problem for future research"* (Section III-B-1). NHDTW is our candidate
  generalization: it ranks queues by total residual *work* rather than by
  length, so the harmonic budget throttles queues hoarding processing
  time instead of queues hoarding packets.

* :class:`LWD1` / :class:`MRD1` — the paper introduces the "do not empty
  a queue" refinement for BPD (BPD₁) and MVD (MVD₁) because emptying a
  queue idles its port. Applying the same refinement to the *good*
  policies is the natural ablation: does protecting the last packet help
  LWD and MRD too, or is it only a crutch for policies that starve ports
  in the first place? (Benchmarks: it barely moves LWD/MRD — their victim
  choice already avoids short queues.)

* :class:`RandomPushOut` — a seeded uniformly-random-victim baseline.
  Any policy worth deploying should beat it; simulations that cannot
  separate a candidate from random eviction are not informative.

These are extensions, not reproductions: nothing here is claimed by the
paper. They are registered in the policy registry (tagged in their
summaries) so experiments can sweep them alongside the originals.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro._math import harmonic_number
from repro.core.decisions import DROP, Decision, push_out
from repro.core.errors import ConfigError
from repro.core.packet import Packet
from repro.core.switch import SwitchView
from repro.policies.base import PushOutPolicy, ThresholdPolicy
from repro.policies.processing import LWD
from repro.policies.value import MRD


class NHDTW(ThresholdPolicy):
    """Work-weighted harmonic dynamic thresholds (NHDT generalization).

    NHDT's harmonic rule, restated in *work units*: rank queues by total
    residual work ``W_j``, and accept an arrival for port ``i`` iff the
    buffer has space and the queues at least as work-heavy as ``Q_i``
    jointly carry less than

        ``(B_w / H_n) * H_m``  work,  where  ``B_w = B * n / Z``

    is the buffer's *effective work capacity* (``Z = sum_j 1/w_j``).
    Mirroring NHDT, the comparison uses pre-arrival state (the arrival is
    not counted virtually). Under uniform works ``w`` with unprocessed
    packets ``W_j = |Q_j| w`` and ``B_w = B w``, so the rule coincides
    with NHDT exactly (a property test locks this for ``w = 1``; with
    ``w > 1`` partially processed heads shift the work totals — that
    deviation *is* the generalization). Under heterogeneous works a
    queue of ten work-10 packets is throttled like a queue of a hundred
    work-1 packets — both have claimed the same share of the switch's
    service time.
    """

    name = "NHDT-W"

    def within_threshold(self, view: SwitchView, packet: Packet) -> bool:
        config = view.config
        own_work = view.total_work(packet.port)
        joint_work = 0
        m = 0
        for port in range(view.n_ports):
            if view.total_work(port) >= own_work or port == packet.port:
                joint_work += view.total_work(port)
                m += 1
        work_capacity = (
            config.buffer_size * config.n_ports / config.inverse_work_sum
        )
        budget = (
            work_capacity / harmonic_number(view.n_ports)
        ) * harmonic_number(m)
        return joint_work < budget


class LWD1(LWD):
    """LWD that never pushes out the last packet of a queue.

    Victim selection excludes singleton queues; if the max-virtual-work
    queue would be emptied, the next-heaviest multi-packet queue is
    targeted instead, and the arrival is dropped when none exists.
    """

    name = "LWD1"

    def congested(self, view: SwitchView, packet: Packet) -> Decision:
        own_virtual = view.total_work(packet.port) + view.work_of(packet.port)
        best_key = self._heaviest_multi_packet_queue(view, packet.port)
        if best_key is None:
            return DROP  # no multi-packet queue to raid
        if best_key[0] < own_virtual:
            # Every eligible victim carries less work than the arrival's
            # own queue would: plain LWD would drop here too (j* == i).
            return DROP
        return push_out(best_key[-1])

    @staticmethod
    def _heaviest_multi_packet_queue(
        view: SwitchView, own_port: int
    ) -> Optional[Tuple[int, int, int]]:
        """Max ``(W_j, w_j, j)`` over queues with ``j != own_port`` and
        at least two packets, or ``None`` when no queue qualifies."""
        index = view.index
        if index is not None:
            return index.ordering("work", 2).best_excluding(own_port)
        best_key: Optional[Tuple[int, int, int]] = None
        for port in range(view.n_ports):
            if port == own_port or view.queue_len(port) < 2:
                continue
            key = (view.total_work(port), view.work_of(port), port)
            if best_key is None or key > best_key:
                best_key = key
        return best_key


class MRD1(MRD):
    """MRD that never pushes out the last packet of a queue.

    The max-ratio victim search is restricted to queues holding at least
    two packets, mirroring MVD₁'s refinement of MVD.
    """

    name = "MRD1"

    def congested(self, view: SwitchView, packet: Packet) -> Decision:
        buffer_min = view.buffer_min_value()
        if buffer_min is None or buffer_min >= packet.value:
            return DROP
        best_port = self._max_ratio_multi_packet_queue(view)
        if best_port is None:
            return DROP
        return push_out(best_port)

    @staticmethod
    def _max_ratio_multi_packet_queue(view: SwitchView) -> Optional[int]:
        index = view.index
        if index is not None:
            top = index.ordering("ratio", 2).best()
            return None if top is None else top[-1]
        best_key: Optional[Tuple[float, float, int]] = None
        best_port: Optional[int] = None
        for port in range(view.n_ports):
            if view.queue_len(port) < 2:
                continue
            ratio = view.queue_len(port) / view.avg_value(port)
            key = (ratio, -view.min_value(port), port)
            if best_key is None or key > best_key:
                best_key = key
                best_port = port
        return best_port


class RandomPushOut(PushOutPolicy):
    """Evict the tail of a uniformly random non-empty queue.

    A seeded control baseline: accepts greedily, and under congestion
    pushes out from a random non-empty queue other than the arrival's
    own (dropping when the arrival's queue is the only candidate). The
    instance owns its RNG, so runs are reproducible given the seed but
    the policy is *not* stateless — build a fresh instance per run when
    comparing traces.
    """

    name = "Random"

    def __init__(self, seed: int = 0) -> None:
        # Lazy import: this is the only numpy dependency in the policy
        # layer, and its decision stream is pinned to numpy's Generator
        # (a stdlib fallback would silently produce different victims
        # for the same seed). Without numpy the policy is unavailable
        # rather than subtly different.
        try:
            import numpy as np
        except ImportError:
            raise ConfigError(
                "the Random policy needs numpy (its victim stream is "
                "pinned to numpy.random.default_rng); install numpy or "
                "drop Random from the policy set"
            ) from None
        self._rng = np.random.default_rng(seed)

    def congested(self, view: SwitchView, packet: Packet) -> Decision:
        candidates = [
            port for port in view.nonempty_ports() if port != packet.port
        ]
        if not candidates:
            return DROP
        victim = int(self._rng.choice(candidates))
        return push_out(victim)
