"""Non-push-out threshold policies: NHST, NEST, NHDT (Section III-B-1).

These policies never evict admitted packets; they accept an arrival only
when the shared buffer has space *and* the arrival's queue is below a
threshold. The paper analyzes three variants:

* **NHST** (Non-Push-Out-Harmonic-Static-Threshold): queue ``i`` may hold at
  most ``B / (w_i * Z)`` packets, where ``Z = sum_j 1/w_j``. Thresholds are
  inversely proportional to required processing. Theorem 1 shows NHST is
  ``kZ + o(kZ)``-competitive.

* **NEST** (Non-Push-Out-Equal-Static-Threshold): every queue may hold at
  most ``B / n`` packets — complete partitioning. Theorem 2 shows NEST is
  ``n + o(n)``-competitive, which (perhaps surprisingly) beats NHST.

* **NHDT** (Non-Push-Out-Harmonic-Dynamic-Threshold, from Kesselman &
  Mansour): for every ``m``, the ``m`` fullest queues may jointly hold at
  most ``(B / H_n) * H_m`` packets. O(log n)-competitive under uniform
  processing; Theorem 3 shows it degrades to ``~ (1/2)sqrt(k ln k)`` under
  heterogeneous processing.

NEST and NHDT consult only queue *lengths*, so they apply unchanged to the
heterogeneous-value model (the paper reuses them in Fig. 5 panels 4-9).
NHST consults per-port required work; its value-model counterpart with
reversed thresholds (Section V-C) is :class:`NHSTValue`.
"""

from __future__ import annotations

from repro._math import harmonic_number
from repro.core.packet import Packet
from repro.core.switch import SwitchView
from repro.policies.base import ThresholdPolicy


class NHST(ThresholdPolicy):
    """Static thresholds inversely proportional to required processing.

    Accept an arriving packet for port ``i`` iff the buffer has space and
    ``|Q_i| < B / (w_i * Z)`` with ``Z = sum_j 1/w_j``.
    """

    name = "NHST"

    def within_threshold(self, view: SwitchView, packet: Packet) -> bool:
        config = view.config
        z = config.inverse_work_sum
        threshold = config.buffer_size / (config.work_of(packet.port) * z)
        return view.queue_len(packet.port) < threshold


class NEST(ThresholdPolicy):
    """Equal static thresholds: complete buffer partitioning.

    Accept iff the buffer has space and ``|Q_i| < B / n``. Each queue
    behaves as an isolated queue with buffer ``B/n``, which is why NEST is
    ``n``-competitive (Theorem 2) regardless of processing heterogeneity.
    """

    name = "NEST"

    def within_threshold(self, view: SwitchView, packet: Packet) -> bool:
        threshold = view.buffer_size / view.n_ports
        return view.queue_len(packet.port) < threshold


class NHDT(ThresholdPolicy):
    """Harmonic dynamic thresholds (Kesselman & Mansour).

    On arrival of a packet for port ``i``, let ``j_1, ..., j_m = i`` be the
    queues at least as full as ``Q_i``. Accept iff the buffer has space and

        ``sum_s |Q_{j_s}| < (B / H_n) * H_m``

    where ``H_m`` is the m-th harmonic number and ``n`` the number of
    output ports. Intuitively the m fullest queues may jointly use only a
    harmonically growing share of the buffer, which protects short queues.
    """

    name = "NHDT"

    def within_threshold(self, view: SwitchView, packet: Packet) -> bool:
        own_len = view.queue_len(packet.port)
        lens_at_least = [
            view.queue_len(port)
            for port in range(view.n_ports)
            if view.queue_len(port) >= own_len or port == packet.port
        ]
        m = len(lens_at_least)
        budget = (
            view.buffer_size / harmonic_number(view.n_ports)
        ) * harmonic_number(m)
        return sum(lens_at_least) < budget


class NHSTValue(ThresholdPolicy):
    """NHST with reversed thresholds for the port-determined value model.

    Section V-C: when a packet's value is uniquely determined by its output
    port, high-*value* queues should get the large thresholds (the original
    NHST would starve them). For the port with the ``r``-th smallest value
    the threshold is ``B / ((k - r + 1) * H_k)``, where ``k`` is the number
    of ports; the most valuable port gets the largest share ``B / H_k``.

    The rank formulation generalizes the paper's ``value = port label``
    special case (where the rank of port ``i`` is ``i``) to arbitrary
    per-port values.
    """

    name = "NHST-V"

    def within_threshold(self, view: SwitchView, packet: Packet) -> bool:
        config = view.config
        values = config.values
        k = config.n_ports
        # Rank r in 1..k of this port's value among all ports (ties broken
        # by port index so every port gets a distinct rank).
        me = (values[packet.port], packet.port)
        rank = sum(1 for j in range(k) if (values[j], j) <= me)
        threshold = config.buffer_size / (
            (k - rank + 1) * harmonic_number(k)
        )
        return view.queue_len(packet.port) < threshold


class GreedyNonPushOut(ThresholdPolicy):
    """Accept whenever the buffer has space; never evict.

    Section IV-B's strawman: a greedy non-push-out policy is at least
    ``k``-competitive in the value model (fill the buffer with value-1
    packets, then send value-``k`` ones). Included as a baseline for the
    value-model experiments and as the simplest sanity-check policy.
    """

    name = "Greedy"

    def within_threshold(self, view: SwitchView, packet: Packet) -> bool:
        return True
