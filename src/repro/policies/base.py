"""Policy abstractions and the policy registry.

A *buffer-management policy* decides, for each arriving packet, whether to
accept it, drop it, or push out a buffered packet to make room (Sections
III-B and IV-B of the paper). Policies in this library are stateless
strategy objects: all state they may consult lives in the switch and is
exposed through :class:`repro.core.switch.SwitchView`, so one policy
instance can be reused across runs and configurations.

Two templates cover every policy in the paper:

* :class:`PushOutPolicy` — greedy: accept whenever the buffer has space;
  when congested, delegate to :meth:`PushOutPolicy.congested` which picks a
  victim or drops. LQD, BPD, LWD, MVD, MRD and their variants fit here.
* :class:`ThresholdPolicy` — non-push-out: accept iff the buffer has space
  *and* a (static or dynamic) per-queue threshold admits the packet.
  NHST, NEST, NHDT fit here.

The registry maps policy names (as used in the paper's figures) to
factories so experiments and the CLI can refer to policies by name.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.core.decisions import ACCEPT, DROP, Decision
from repro.core.errors import ConfigError
from repro.core.packet import Packet
from repro.core.switch import SwitchView


class Policy(ABC):
    """Base class of all buffer-management policies."""

    #: Short name as used in the paper's figures (e.g. ``"LWD"``).
    name: str = "policy"

    #: Whether the policy may evict already-admitted packets.
    is_push_out: bool = False

    @abstractmethod
    def admit(self, view: SwitchView, packet: Packet) -> Decision:
        """Decide the fate of one arriving packet."""

    def describe(self) -> str:
        """Human-readable one-liner for logs and experiment captions."""
        kind = "push-out" if self.is_push_out else "non-push-out"
        return f"{self.name} ({kind})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class PushOutPolicy(Policy):
    """Greedy push-out template: accept while there is space; otherwise
    consult :meth:`congested`.

    The paper notes most of its algorithms are greedy ("accept all arrivals
    if there is enough buffer space"), which keeps implementations simple;
    the template encodes exactly that structure.
    """

    is_push_out = True

    def admit(self, view: SwitchView, packet: Packet) -> Decision:
        # can_accept == not is_full on the purely shared model; under a
        # reserved + shared split it is the per-port admissibility test.
        if view.can_accept(packet.port):
            return ACCEPT
        return self.congested(view, packet)

    @abstractmethod
    def congested(self, view: SwitchView, packet: Packet) -> Decision:
        """Handle an arrival into a full buffer: push out or drop."""


class ThresholdPolicy(Policy):
    """Non-push-out template: accept iff below threshold and not full."""

    is_push_out = False

    def admit(self, view: SwitchView, packet: Packet) -> Decision:
        if not view.can_accept(packet.port):
            return DROP
        if self.within_threshold(view, packet):
            return ACCEPT
        return DROP

    @abstractmethod
    def within_threshold(self, view: SwitchView, packet: Packet) -> bool:
        """Whether the packet's queue may grow under the policy threshold."""


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PolicyEntry:
    """Registry record: how to build a policy and where it applies."""

    name: str
    factory: Callable[[], Policy]
    models: frozenset[str]  # subset of {"processing", "value"}
    summary: str


_REGISTRY: Dict[str, PolicyEntry] = {}


def register_policy(
    name: str,
    factory: Callable[[], Policy],
    models: Iterable[str],
    summary: str,
) -> None:
    """Register a policy factory under ``name`` (case-insensitive)."""
    key = name.lower()
    if key in _REGISTRY:
        raise ConfigError(f"policy {name!r} already registered")
    model_set = frozenset(models)
    if not model_set <= {"processing", "value"}:
        raise ConfigError(f"bad model tags for {name!r}: {models}")
    _REGISTRY[key] = PolicyEntry(
        name=name, factory=factory, models=model_set, summary=summary
    )


def make_policy(name: str) -> Policy:
    """Instantiate a registered policy by (case-insensitive) name."""
    entry = _REGISTRY.get(name.lower())
    if entry is None:
        known = ", ".join(sorted(e.name for e in _REGISTRY.values()))
        raise ConfigError(f"unknown policy {name!r}; known: {known}")
    return entry.factory()


def policy_entry(name: str) -> PolicyEntry:
    """Look up the registry record for ``name``."""
    entry = _REGISTRY.get(name.lower())
    if entry is None:
        raise ConfigError(f"unknown policy {name!r}")
    return entry


def available_policies(model: Optional[str] = None) -> List[PolicyEntry]:
    """All registered policies, optionally filtered by model tag."""
    entries = sorted(_REGISTRY.values(), key=lambda e: e.name)
    if model is None:
        return entries
    return [e for e in entries if model in e.models]
