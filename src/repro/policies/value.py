"""Push-out policies for the heterogeneous-value model (Section IV).

Unit-work packets carry an intrinsic value; each output queue is a priority
queue that transmits its most valuable packet first, and the objective is
total transmitted value. The paper examines the two "pure" strategies and
its proposed hybrid:

* **LQD** — value-oblivious: push out the lowest-value packet of the
  longest queue. Keeps ports busy but ignores value; Theorem 9 shows an
  ``Ω(cbrt(k))`` lower bound.

* **MVD** (Minimal-Value-Drop) — greedily maximize buffered value: push out
  the globally least valuable packet, but only when the arrival is strictly
  more valuable. Starves ports; Theorem 10 shows an ``(m-1)/2`` lower bound
  with ``m = min(k, B)``.

* **MVD₁** — MVD that never empties a queue (Section V-C), analogous to
  BPD₁.

* **MRD** (Maximal-Ratio-Drop) — the paper's proposed hybrid, conjectured
  O(1)-competitive: push out the tail of the queue maximizing
  ``|Q_j| / a_j`` (length over average value), trading off active ports
  against buffered value exactly as LWD trades off length against work in
  the processing model. At least ``4/3``-competitive when values are
  port-determined (Theorem 11) and at least ``sqrt(2)`` (inherits LQD's
  bound under unit values).

Push-out always evicts a queue's *tail*, which for value-model priority
queues is its least valuable packet.

As in the processing model, each selector keeps a naive O(n) reference
scan (used on ``fast_path=False`` switches) next to an indexed O(log n)
read of the switch's aggregate index; the two are decision-identical by
construction (port-last unique keys, exact float negation for the
min-orderings) and by the differential test suite.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.decisions import ACCEPT, DROP, Decision, push_out
from repro.core.packet import Packet
from repro.core.switch import SwitchView
from repro.policies.base import PushOutPolicy


class LQDValue(PushOutPolicy):
    """Longest-Queue-Drop in the value model.

    Identical queue selection to processing-model LQD (virtual arrival
    counted towards its own queue; ``j* != i`` required to push out).
    Ties among longest queues prefer the queue whose tail is cheapest
    (sacrificing the least value), then the largest index.
    """

    name = "LQD-V"

    def congested(self, view: SwitchView, packet: Packet) -> Decision:
        target = self._longest_queue(view, packet)
        if target == packet.port:
            return DROP
        return push_out(target)

    @staticmethod
    def _longest_queue(view: SwitchView, packet: Packet) -> int:
        index = view.index
        if index is None:
            return LQDValue._longest_queue_naive(view, packet)
        # Own virtual key starts with |Q_i| + 1 >= 1; empty ports' keys
        # start with 0, so the non-empty-only ordering suffices.
        own = packet.port
        own_len = view.queue_len(own)
        own_key = (
            (own_len + 1, -view.tail_value(own), own)
            if own_len > 0
            else (1, float("-inf"), own)
        )
        top = index.ordering("length_cheap").best_excluding(own)
        if top is None or top < own_key:
            return own
        return top[-1]

    @staticmethod
    def _longest_queue_naive(view: SwitchView, packet: Packet) -> int:
        best_key: Optional[Tuple[int, float, int]] = None
        best_port = packet.port
        for port in range(view.n_ports):
            virtual_len = view.queue_len(port) + (1 if port == packet.port else 0)
            if view.queue_len(port) > 0:
                cheap = -view.tail_value(port)
            else:
                cheap = float("-inf")
            key = (virtual_len, cheap, port)
            if best_key is None or key > best_key:
                best_key = key
                best_port = port
        return best_port


class MVD(PushOutPolicy):
    """Minimal-Value-Drop.

    On congestion, find the queue holding the globally minimal buffered
    value (ties prefer the longest such queue, per the paper, then the
    largest index). If that minimal value is strictly below the arrival's
    value, push out that queue's tail (= its minimal-value packet) and
    accept; otherwise drop.
    """

    name = "MVD"

    #: Minimum victim-queue length; MVD₁ raises it to 2.
    min_victim_len = 1

    def congested(self, view: SwitchView, packet: Packet) -> Decision:
        victim = self._min_value_queue(view)
        if victim is None:
            return DROP
        if view.tail_value(victim) < packet.value:
            return push_out(victim)
        return DROP

    def _min_value_queue(self, view: SwitchView) -> Optional[int]:
        index = view.index
        if index is None:
            return self._min_value_queue_naive(view)
        # The "min_value" ordering stores (-min value, |Q|, port), whose
        # maximum is exactly the minimum of (min value, -|Q|, -port) —
        # IEEE negation is exact, so ties transfer bit-for-bit.
        top = index.ordering("min_value", self.min_victim_len).best()
        return None if top is None else top[-1]

    def _min_value_queue_naive(self, view: SwitchView) -> Optional[int]:
        best_key: Optional[Tuple[float, int, int]] = None
        best_port: Optional[int] = None
        for port in range(view.n_ports):
            length = view.queue_len(port)
            if length < self.min_victim_len:
                continue
            # Lexicographic minimum on value, then maximum on length/index:
            # negate the latter two so a single "smaller is better" key works.
            key = (view.min_value(port), -length, -port)
            if best_key is None or key < best_key:
                best_key = key
                best_port = port
        return best_port


class MVD1(MVD):
    """MVD that never pushes out the last packet of a queue (Section V-C)."""

    name = "MVD1"
    min_victim_len = 2


class MRD(PushOutPolicy):
    """Maximal-Ratio-Drop — the paper's conjectured O(1) policy.

    On congestion, let ``Q_j`` maximize ``|Q_j| / a_j`` over non-empty
    queues, where ``a_j`` is the average buffered value of queue ``j``
    (ties prefer the queue containing a smaller value, then the largest
    index). If the minimal value currently buffered anywhere is strictly
    below the arrival's value, push out the tail of ``Q_j`` and accept;
    otherwise drop.

    Note the admission test uses the *global* minimum while the victim is
    the max-ratio queue's tail — the two may differ; we implement the
    paper's definition literally. With unit values MRD reduces to LQD.
    """

    name = "MRD"

    def congested(self, view: SwitchView, packet: Packet) -> Decision:
        buffer_min = view.buffer_min_value()
        if buffer_min is None:
            # Congested but empty is impossible when B >= 1; guard anyway.
            return ACCEPT if not view.is_full else DROP
        if buffer_min >= packet.value:
            return DROP
        victim = self._max_ratio_queue(view)
        if victim is None:
            return DROP
        return push_out(victim)

    @staticmethod
    def _max_ratio_queue(view: SwitchView) -> Optional[int]:
        index = view.index
        if index is None:
            return MRD._max_ratio_queue_naive(view)
        # The "ratio" key computes len/avg with the same float operations
        # as the naive scan, so the ratios — and the ties — are identical.
        top = index.ordering("ratio").best()
        return None if top is None else top[-1]

    @staticmethod
    def _max_ratio_queue_naive(view: SwitchView) -> Optional[int]:
        best_key: Optional[Tuple[float, float, int]] = None
        best_port: Optional[int] = None
        for port in range(view.n_ports):
            length = view.queue_len(port)
            if length == 0:
                continue
            ratio = length / view.avg_value(port)
            key = (ratio, -view.min_value(port), port)
            if best_key is None or key > best_key:
                best_key = key
                best_port = port
        return best_port
