"""Push-out policies for the heterogeneous-processing model (Section III).

All four policies are greedy (accept while the buffer has space) and differ
only in which buffered packet they sacrifice under congestion:

* **LQD** (Longest-Queue-Drop, Aiello et al.) — push out the tail of the
  longest queue. Optimal up to constants under uniform processing, but
  Theorem 4 shows it degrades to ``Ω(sqrt(k))`` with heterogeneous work.

* **BPD** (Biggest-Packet-Drop) — push out from the non-empty queue with
  the largest per-packet work, i.e. greedily minimize total buffered work.
  Theorem 5 shows a ``ln k + γ`` lower bound: BPD starves ports.

* **BPD₁** — BPD that never empties a queue (victims must leave at least
  one packet behind); introduced in Section V-B to counteract BPD's
  port-starvation pathology in simulations.

* **LWD** (Longest-Work-Drop) — the paper's main contribution: push out the
  tail of the queue with the most total residual work ``W_j``. Combines
  LQD's port balance with work awareness; Theorem 7 proves LWD is at most
  **2-competitive**, and it is at least ``4/3 - 6/B``-competitive in the
  contiguous case (Theorem 6) and ``sqrt(2)`` under uniform processing.

Tie-breaking follows the paper where specified (largest required work) and
is completed deterministically by the largest port index otherwise, so runs
are reproducible bit-for-bit.

Each selector has two implementations with identical decisions: a naive
O(n) scan over the :class:`~repro.core.switch.SwitchView` (the reference,
used when the switch was built with ``fast_path=False``) and an indexed
O(log n) read of the switch's :class:`~repro.core.aggregates.
AggregateIndex`. Because every ordering key ends with the port number,
keys are unique and the ordering's maximum coincides with the reference
scan's first-strict-maximum — the differential suite in
``tests/test_fastpath_differential.py`` locks this equivalence down.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.decisions import DROP, Decision, push_out
from repro.core.packet import Packet
from repro.core.switch import SwitchView
from repro.policies.base import PushOutPolicy


class LQD(PushOutPolicy):
    """Longest-Queue-Drop.

    On congestion, let ``j*`` maximize ``|Q_j| + [j = i]`` (the arrival is
    counted virtually towards its own queue); ties prefer the queue with
    the largest required processing, then the largest index. If ``j* != i``
    push out the tail of ``Q_{j*}`` and accept; otherwise drop (the arrival
    itself belongs to the longest queue).
    """

    name = "LQD"

    def congested(self, view: SwitchView, packet: Packet) -> Decision:
        target = self._longest_queue(view, packet)
        if target == packet.port:
            return DROP
        return push_out(target)

    @staticmethod
    def _longest_queue(view: SwitchView, packet: Packet) -> int:
        index = view.index
        if index is None:
            return LQD._longest_queue_naive(view, packet)
        # Indexed: the arrival's own queue competes with its virtual key
        # (|Q_i| + 1, w_i, i); an empty queue's key starts with 0 < 1, so
        # no empty port can out-rank it and the non-empty-only ordering
        # is sufficient.
        own = packet.port
        own_key = (view.queue_len(own) + 1, view.work_of(own), own)
        top = index.ordering("length").best_excluding(own)
        if top is None or top < own_key:
            return own
        return top[-1]

    @staticmethod
    def _longest_queue_naive(view: SwitchView, packet: Packet) -> int:
        best_key: Optional[Tuple[int, int, int]] = None
        best_port = packet.port
        for port in range(view.n_ports):
            virtual_len = view.queue_len(port) + (1 if port == packet.port else 0)
            key = (virtual_len, view.work_of(port), port)
            if best_key is None or key > best_key:
                best_key = key
                best_port = port
        return best_port


class BPD(PushOutPolicy):
    """Biggest-Packet-Drop.

    On congestion, let ``Q_j`` be the non-empty queue with the largest
    required processing (ties prefer the largest index, mirroring the
    paper's sorted-port convention). Push out its tail and accept iff the
    arrival "precedes" the victim in that order — ``w_i < w_j``, or
    ``w_i = w_j`` and ``i <= j`` — and drop otherwise.
    """

    name = "BPD"

    #: Minimum number of packets a queue must hold to be a victim. BPD₁
    #: overrides this to 2 so that victims always leave a packet behind.
    min_victim_len = 1

    def congested(self, view: SwitchView, packet: Packet) -> Decision:
        victim = self._biggest_queue(view)
        if victim is None:
            return DROP
        arrival_key = (view.work_of(packet.port), packet.port)
        victim_key = (view.work_of(victim), victim)
        if arrival_key <= victim_key:
            return push_out(victim)
        return DROP

    def _biggest_queue(self, view: SwitchView) -> Optional[int]:
        index = view.index
        if index is None:
            return self._biggest_queue_naive(view)
        top = index.ordering("static_work", self.min_victim_len).best()
        return None if top is None else top[-1]

    def _biggest_queue_naive(self, view: SwitchView) -> Optional[int]:
        best_key: Optional[Tuple[int, int]] = None
        best_port: Optional[int] = None
        for port in range(view.n_ports):
            if view.queue_len(port) < self.min_victim_len:
                continue
            key = (view.work_of(port), port)
            if best_key is None or key > best_key:
                best_key = key
                best_port = port
        return best_port


class BPD1(BPD):
    """BPD that never pushes out the last packet of a queue (Section V-B).

    Victim queues must hold at least two packets; if no such queue exists
    the arrival is dropped. This prevents BPD from idling output ports,
    which the simulations identify as its main weakness.
    """

    name = "BPD1"
    min_victim_len = 2


class LWD(PushOutPolicy):
    """Longest-Work-Drop — the paper's main policy (Theorems 6 and 7).

    On congestion, let ``j*`` maximize ``W_j + [j = i] * w_i`` where ``W_j``
    is the total residual work of queue ``j`` and the arrival's work is
    counted virtually towards its own queue; ties prefer the queue with the
    largest per-packet work (as the paper specifies), then the largest
    index. If ``j* != i`` push out the tail of ``Q_{j*}`` and accept;
    otherwise drop.

    Under uniform processing requirements all queues hold equal-work
    packets and LWD's choice coincides with LQD's, which is how the
    ``sqrt(2)`` lower bound of Aiello et al. transfers to LWD.
    """

    name = "LWD"

    def congested(self, view: SwitchView, packet: Packet) -> Decision:
        target = self._longest_work_queue(view, packet)
        if target == packet.port:
            return DROP
        return push_out(target)

    @staticmethod
    def _longest_work_queue(view: SwitchView, packet: Packet) -> int:
        index = view.index
        if index is None:
            return LWD._longest_work_queue_naive(view, packet)
        # Own virtual key (W_i + w_i, w_i, i) has first component >= 1, so
        # empty ports (key starting with 0) can never beat it — the
        # non-empty-only ordering decides exactly like the full scan.
        own = packet.port
        own_work = view.work_of(own)
        own_key = (view.total_work(own) + own_work, own_work, own)
        top = index.ordering("work").best_excluding(own)
        if top is None or top < own_key:
            return own
        return top[-1]

    @staticmethod
    def _longest_work_queue_naive(view: SwitchView, packet: Packet) -> int:
        own_work = view.work_of(packet.port)
        best_key: Optional[Tuple[int, int, int]] = None
        best_port = packet.port
        for port in range(view.n_ports):
            virtual = view.total_work(port) + (
                own_work if port == packet.port else 0
            )
            key = (virtual, view.work_of(port), port)
            if best_key is None or key > best_key:
                best_key = key
                best_port = port
        return best_port
