"""Observability layer: event tracing, trace replay, stage profiling.

Three cooperating pieces (see ``docs/OBSERVABILITY.md``):

* :class:`SlotObserver` / :class:`PacketEvent` — the read-only event
  protocol a :class:`~repro.core.switch.SharedMemorySwitch` drives when
  an observer is attached (one ``is None`` check per arrival when not).
* :class:`JsonlTraceWriter` / :class:`TraceReplayer` — record a run as
  a versioned JSONL event stream; re-derive its metrics purely from the
  stream and check conservation laws, byte-equal to the live run.
* :class:`CounterRegistry` — named counters and stage timers behind the
  sweep engine's per-stage cost breakdown (``repro profile``).
"""

from repro.obs.counters import CounterRegistry
from repro.obs.observer import PacketEvent, SlotObserver
from repro.obs.replay import (
    ConservationError,
    ReplayResult,
    TraceReplayer,
    replay_trace,
)
from repro.obs.trace_io import (
    EVENT_SCHEMA_VERSION,
    JsonlTraceWriter,
    read_events,
    record_trace,
)

__all__ = [
    "ConservationError",
    "CounterRegistry",
    "EVENT_SCHEMA_VERSION",
    "JsonlTraceWriter",
    "PacketEvent",
    "ReplayResult",
    "SlotObserver",
    "TraceReplayer",
    "read_events",
    "record_trace",
    "replay_trace",
]
