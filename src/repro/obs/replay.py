"""Trace replay: re-derive run metrics from a recorded event stream.

The replayer is the verification half of the observability layer. It
reads a JSONL event trace (see :mod:`repro.obs.trace_io`), rebuilds a
:class:`~repro.core.metrics.SwitchMetrics` *purely from the events* —
by feeding reconstructed packet snapshots through the exact same
``record_*`` hooks the live engine uses, in the exact same order, so
float accumulation is bit-identical — and checks conservation laws as
it goes:

* **Slot framing** — ``slot`` / ``slot_end`` / ``idle`` frames advance a
  replayed clock consistently; every ``slot_end``'s recorded occupancy
  must equal the occupancy implied by the event stream, and it must
  never exceed the header's buffer size.
* **Decision pairing** — every ``dec`` follows exactly one ``arr``; a
  ``push_out`` decision is preceded by exactly one ``push`` event.
* **Packet conservation** — ``arrived = accepted + dropped`` and
  ``accepted = transmitted + pushed_out + flushed + final backlog``,
  both in total and per port.
* **Value conservation** — per-port buffered value implied by the
  stream never goes negative, and the per-port transmitted-value totals
  sum to the scalar total.

When the trace carries an ``end`` footer with the live run's metrics
snapshot, :meth:`ReplayResult.verify` additionally asserts the replayed
metrics are byte-equal to the recorded ones — turning every recorded
run into a self-checking artifact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Dict, Iterable, List, Optional, Union

from repro.core.errors import TraceError
from repro.core.metrics import SwitchMetrics
from repro.obs.observer import PacketEvent
from repro.obs.trace_io import read_events


class ConservationError(TraceError):
    """A recorded trace violates a conservation law or framing rule."""


@dataclass
class ReplayResult:
    """Outcome of replaying one event trace."""

    header: Dict[str, object]
    metrics: SwitchMetrics
    recorded: Optional[SwitchMetrics]
    n_events: int
    n_slots: int
    final_backlog: int
    backlog_by_port: List[int]

    @property
    def has_footer(self) -> bool:
        return self.recorded is not None

    @property
    def matches_recorded(self) -> bool:
        """Whether the replayed metrics equal the footer snapshot
        (vacuously ``False`` when the trace has no footer)."""
        return self.recorded is not None and self.metrics == self.recorded

    def verify(self) -> None:
        """Raise :class:`ConservationError` unless the replayed metrics
        are byte-equal to the footer snapshot."""
        if self.recorded is None:
            raise ConservationError(
                "trace has no end-of-run metrics footer to verify against"
            )
        if self.metrics != self.recorded:
            diffs = _diff_metrics(self.metrics, self.recorded)
            raise ConservationError(
                "replayed metrics differ from recorded run: " + diffs
            )

    def summary(self) -> str:
        m = self.metrics
        status = (
            "verified" if self.matches_recorded
            else ("no footer" if self.recorded is None else "MISMATCH")
        )
        return (
            f"{self.n_events} events, {m.slots_elapsed} slots, "
            f"{m.arrived} arrivals -> {m.transmitted_packets} transmitted "
            f"(value {m.transmitted_value:g}), {m.dropped} dropped, "
            f"{m.pushed_out} pushed out, {m.flushed} flushed, "
            f"backlog {self.final_backlog} [{status}]"
        )


def _diff_metrics(replayed: SwitchMetrics, recorded: SwitchMetrics) -> str:
    fields = (
        "n_ports arrived accepted dropped pushed_out flushed "
        "transmitted_packets transmitted_value slots_elapsed "
        "occupancy_integral occupancy_peak transmitted_by_port "
        "transmitted_value_by_port dropped_by_port delay_sum_by_port "
        "delay_count_by_port"
    ).split()
    diffs = [
        f"{name}: replayed={getattr(replayed, name)!r} "
        f"recorded={getattr(recorded, name)!r}"
        for name in fields
        if getattr(replayed, name) != getattr(recorded, name)
    ]
    return "; ".join(diffs) if diffs else "(no field differs?)"


class TraceReplayer:
    """Replays one event trace; see the module docstring for the laws."""

    def replay(self, source: Union[str, Path, IO[str]]) -> ReplayResult:
        return self.replay_events(read_events(source))

    def replay_events(
        self, events: Iterable[Dict[str, object]]
    ) -> ReplayResult:
        header: Optional[Dict[str, object]] = None
        metrics: Optional[SwitchMetrics] = None
        recorded: Optional[SwitchMetrics] = None
        buffer_size: Optional[int] = None
        n_ports = 0

        occupancy = 0
        clock: Optional[int] = None  # next expected slot number
        in_slot = False
        ended = False
        n_events = 0
        n_slots = 0

        pending_arrival: Optional[PacketEvent] = None
        pending_push: Optional[PacketEvent] = None

        backlog_by_port: List[int] = []
        backlog_value: List[float] = []
        accepted_by_port: List[int] = []
        tx_by_port: List[int] = []
        pushed_by_port: List[int] = []
        flushed_by_port: List[int] = []
        dropped_arrivals_by_port: List[int] = []
        port_up: List[bool] = []

        def fail(message: str) -> "ConservationError":
            return ConservationError(
                f"event {n_events}"
                + (f" (slot {clock})" if clock is not None else "")
                + f": {message}"
            )

        for event in events:
            n_events += 1
            kind = event["t"]

            if kind == "header":
                header = dict(event)
                if "n_ports" not in header:
                    raise fail("header lacks n_ports; cannot replay")
                n_ports = int(header["n_ports"])  # type: ignore[arg-type]
                if n_ports < 1:
                    raise fail(f"header n_ports {n_ports} invalid")
                raw_b = header.get("buffer_size")
                buffer_size = int(raw_b) if raw_b is not None else None
                metrics = SwitchMetrics(n_ports=n_ports)
                backlog_by_port = [0] * n_ports
                backlog_value = [0.0] * n_ports
                accepted_by_port = [0] * n_ports
                tx_by_port = [0] * n_ports
                pushed_by_port = [0] * n_ports
                flushed_by_port = [0] * n_ports
                dropped_arrivals_by_port = [0] * n_ports
                port_up = [True] * n_ports
                continue

            assert metrics is not None  # read_events guarantees a header
            if ended:
                raise fail(f"event {kind!r} after end-of-trace footer")
            slot = event.get("slot")

            if kind == "slot":
                if in_slot:
                    raise fail("slot frame opened inside another slot")
                if clock is None:
                    clock = int(slot)  # type: ignore[arg-type]
                elif slot != clock:
                    raise fail(f"slot frame {slot} != expected {clock}")
                in_slot = True
                continue

            if kind == "arr":
                if not in_slot:
                    raise fail("arrival outside a slot frame")
                if pending_arrival is not None:
                    raise fail("arrival while a decision is still pending")
                port = int(event["port"])  # type: ignore[arg-type]
                if not 0 <= port < n_ports:
                    raise fail(f"arrival port {port} out of range")
                pending_arrival = PacketEvent(
                    port=port,
                    work=int(event.get("work", 1)),  # type: ignore[arg-type]
                    value=float(event["value"]),  # type: ignore[arg-type]
                    arrival_slot=int(event["aslot"]),  # type: ignore[arg-type]
                    seq=-1,
                    residual=0,
                )
                metrics.record_arrival(pending_arrival)
                continue

            if kind == "push":
                if pending_arrival is None:
                    raise fail("push-out with no arrival pending")
                if pending_push is not None:
                    raise fail("two push-outs for one arrival")
                port = int(event["port"])  # type: ignore[arg-type]
                if not 0 <= port < n_ports:
                    raise fail(f"push-out victim port {port} out of range")
                if backlog_by_port[port] < 1:
                    raise fail(f"push-out from empty replayed queue {port}")
                pending_push = PacketEvent(
                    port=port,
                    work=1,
                    value=float(event["value"]),  # type: ignore[arg-type]
                    arrival_slot=0,
                    seq=-1,
                    residual=int(event.get("residual", 1)),  # type: ignore[arg-type]
                )
                continue

            if kind == "dec":
                if pending_arrival is None:
                    raise fail("decision with no arrival pending")
                action = event["action"]
                if action == "push_out":
                    if pending_push is None:
                        raise fail("push_out decision without a push event")
                    metrics.record_push_out(pending_push)
                    occupancy -= 1
                    backlog_by_port[pending_push.port] -= 1
                    backlog_value[pending_push.port] -= pending_push.value
                    if backlog_value[pending_push.port] < -1e-9:
                        raise fail(
                            f"queue {pending_push.port} value went negative"
                        )
                    pushed_by_port[pending_push.port] += 1
                elif pending_push is not None:
                    raise fail(f"push event before a {action!r} decision")

                if action == "drop":
                    metrics.record_drop(pending_arrival)
                    dropped_arrivals_by_port[pending_arrival.port] += 1
                elif action in ("accept", "push_out"):
                    metrics.record_accept(pending_arrival)
                    occupancy += 1
                    if buffer_size is not None and occupancy > buffer_size:
                        raise fail(
                            f"occupancy {occupancy} exceeds buffer "
                            f"size {buffer_size}"
                        )
                    backlog_by_port[pending_arrival.port] += 1
                    backlog_value[pending_arrival.port] += (
                        pending_arrival.value
                    )
                    accepted_by_port[pending_arrival.port] += 1
                else:
                    raise fail(f"unknown decision action {action!r}")
                pending_arrival = None
                pending_push = None
                continue

            if pending_arrival is not None:
                raise fail(f"event {kind!r} while a decision is pending")

            if kind == "tx":
                if not in_slot:
                    raise fail("transmission outside a slot frame")
                port = int(event["port"])  # type: ignore[arg-type]
                if not 0 <= port < n_ports:
                    raise fail(f"transmit port {port} out of range")
                if backlog_by_port[port] < 1:
                    raise fail(f"transmit from empty replayed queue {port}")
                packet = PacketEvent(
                    port=port,
                    work=1,
                    value=float(event["value"]),  # type: ignore[arg-type]
                    arrival_slot=int(event["aslot"]),  # type: ignore[arg-type]
                    seq=-1,
                    residual=0,
                )
                metrics.record_transmissions((packet,), slot=int(slot))  # type: ignore[arg-type]
                occupancy -= 1
                backlog_by_port[port] -= 1
                backlog_value[port] -= packet.value
                if backlog_value[port] < -1e-9:
                    raise fail(f"queue {port} value went negative")
                tx_by_port[port] += 1
                continue

            if kind == "slot_end":
                if not in_slot:
                    raise fail("slot_end without a matching slot frame")
                if slot != clock:
                    raise fail(f"slot_end {slot} != expected {clock}")
                recorded_occ = int(event["occ"])  # type: ignore[arg-type]
                if recorded_occ != occupancy:
                    raise fail(
                        f"recorded occupancy {recorded_occ} != replayed "
                        f"{occupancy} (conservation violated)"
                    )
                metrics.record_slot(occupancy)
                in_slot = False
                clock += 1  # type: ignore[operator]
                n_slots += 1
                continue

            if kind == "idle":
                if in_slot:
                    raise fail("idle frame inside a slot")
                if occupancy != 0:
                    raise fail(
                        f"idle frame with non-empty buffer ({occupancy})"
                    )
                if clock is not None and slot != clock:
                    raise fail(f"idle frame at {slot} != expected {clock}")
                n = int(event["n"])  # type: ignore[arg-type]
                if n < 0:
                    raise fail(f"idle frame of negative length {n}")
                metrics.record_idle_slots(n)
                clock = (int(slot) if clock is None else clock) + n  # type: ignore[arg-type]
                n_slots += n
                continue

            if kind == "flush":
                if in_slot:
                    raise fail("flush inside a slot frame")
                count = int(event["count"])  # type: ignore[arg-type]
                if count != occupancy:
                    raise fail(
                        f"flush of {count} packets but replayed "
                        f"occupancy is {occupancy}"
                    )
                ports = event.get("ports", [])
                if sum(ports) != count:  # type: ignore[arg-type]
                    raise fail("flush per-port counts do not sum to count")
                for port, flushed in enumerate(ports):  # type: ignore[arg-type]
                    if flushed > backlog_by_port[port]:
                        raise fail(
                            f"flush of {flushed} packets from queue {port} "
                            f"holding {backlog_by_port[port]}"
                        )
                    flushed_by_port[port] += flushed
                    backlog_by_port[port] -= flushed
                    backlog_value[port] = 0.0
                metrics.record_flush(range(count))
                occupancy = 0
                continue

            if kind == "pstate":
                if in_slot:
                    raise fail("pstate inside a slot frame")
                port = int(event["port"])  # type: ignore[arg-type]
                if not 0 <= port < n_ports:
                    raise fail(f"pstate port {port} out of range")
                up = bool(event["up"])
                if up == port_up[port]:
                    state = "up" if up else "down"
                    raise fail(f"pstate: port {port} is already {state}")
                port_up[port] = up
                count = int(event["count"])  # type: ignore[arg-type]
                if up:
                    if count != 0:
                        raise fail(
                            f"port-up pstate reclaims {count} packets"
                        )
                    continue
                # Port-down reclaims the *whole* replayed queue: the
                # engines flush every buffered packet for the port, so
                # a partial count is a conservation violation.
                if count != backlog_by_port[port]:
                    raise fail(
                        f"pstate reclaims {count} packets from queue "
                        f"{port} holding {backlog_by_port[port]}"
                    )
                flushed_by_port[port] += count
                backlog_by_port[port] = 0
                backlog_value[port] = 0.0
                occupancy -= count
                metrics.record_flush(range(count))
                continue

            if kind == "end":
                ended = True
                snapshot = event.get("metrics")
                if snapshot is not None:
                    recorded = SwitchMetrics.from_snapshot(snapshot)  # type: ignore[arg-type]
                continue

            raise fail(f"unknown event type {kind!r}")

        if metrics is None:
            raise ConservationError("trace has no header")
        if in_slot:
            raise ConservationError("trace ends inside an open slot frame")
        if pending_arrival is not None:
            raise ConservationError("trace ends with an undecided arrival")

        self._check_conservation(
            metrics,
            occupancy,
            backlog_by_port,
            accepted_by_port,
            tx_by_port,
            pushed_by_port,
            flushed_by_port,
            dropped_arrivals_by_port,
        )
        return ReplayResult(
            header=header or {},
            metrics=metrics,
            recorded=recorded,
            n_events=n_events,
            n_slots=n_slots,
            final_backlog=occupancy,
            backlog_by_port=backlog_by_port,
        )

    @staticmethod
    def _check_conservation(
        metrics: SwitchMetrics,
        occupancy: int,
        backlog_by_port: List[int],
        accepted_by_port: List[int],
        tx_by_port: List[int],
        pushed_by_port: List[int],
        flushed_by_port: List[int],
        dropped_arrivals_by_port: List[int],
    ) -> None:
        if metrics.arrived != metrics.accepted + metrics.dropped:
            raise ConservationError(
                f"arrived {metrics.arrived} != accepted {metrics.accepted} "
                f"+ dropped {metrics.dropped}"
            )
        outflow = (
            metrics.transmitted_packets
            + metrics.pushed_out
            + metrics.flushed
            + occupancy
        )
        if metrics.accepted != outflow:
            raise ConservationError(
                f"accepted {metrics.accepted} != transmitted "
                f"{metrics.transmitted_packets} + pushed_out "
                f"{metrics.pushed_out} + flushed {metrics.flushed} "
                f"+ backlog {occupancy}"
            )
        for port in range(metrics.n_ports):
            expected = (
                tx_by_port[port]
                + pushed_by_port[port]
                + flushed_by_port[port]
                + backlog_by_port[port]
            )
            if accepted_by_port[port] != expected:
                raise ConservationError(
                    f"port {port}: accepted {accepted_by_port[port]} != "
                    f"tx {tx_by_port[port]} + pushed {pushed_by_port[port]} "
                    f"+ flushed {flushed_by_port[port]} + backlog "
                    f"{backlog_by_port[port]}"
                )
            drops = dropped_arrivals_by_port[port] + pushed_by_port[port]
            if metrics.dropped_by_port[port] != drops:
                raise ConservationError(
                    f"port {port}: dropped_by_port "
                    f"{metrics.dropped_by_port[port]} != dropped arrivals "
                    f"{dropped_arrivals_by_port[port]} + push-out victims "
                    f"{pushed_by_port[port]}"
                )
            if metrics.transmitted_by_port[port] != tx_by_port[port]:
                raise ConservationError(
                    f"port {port}: transmitted_by_port "
                    f"{metrics.transmitted_by_port[port]} != replayed "
                    f"{tx_by_port[port]}"
                )
        per_port_total = math.fsum(metrics.transmitted_value_by_port)
        if not math.isclose(
            per_port_total,
            metrics.transmitted_value,
            rel_tol=1e-9,
            abs_tol=1e-9,
        ):
            raise ConservationError(
                f"per-port transmitted value {per_port_total!r} != total "
                f"{metrics.transmitted_value!r}"
            )


def replay_trace(source: Union[str, Path, IO[str]]) -> ReplayResult:
    """One-call façade: replay ``source`` and return the result."""
    return TraceReplayer().replay(source)
