"""Named counters and stage timers for coarse-grained profiling.

Where :mod:`repro.obs.observer` watches *packet-level* events, this
module watches *stage-level* cost: how long a sweep cell spends
generating its trace, running the policy, and running the OPT
surrogate. A :class:`CounterRegistry` is a tiny façade over two dicts —
monotonically increasing counters and accumulated wall-clock timers —
with a merge operation so per-cell registries can be folded into
per-sweep totals (:class:`~repro.analysis.sweep.SweepStats` carries the
result; ``repro profile`` prints it).

Timers use :func:`time.perf_counter` and accumulate ``(seconds,
calls)``; they nest but do not deduplicate — a stage timed inside
another stage is charged to both, which is the useful convention for
"where does the wall-clock go" breakdowns.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, Mapping, Tuple


class _Timer:
    """Context manager charging elapsed wall-clock to one stage name."""

    __slots__ = ("_registry", "_name", "_started")

    def __init__(self, registry: "CounterRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._started = 0.0

    def __enter__(self) -> "_Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *_exc: object) -> None:
        self._registry.add_seconds(
            self._name, time.perf_counter() - self._started
        )


class CounterRegistry:
    """Accumulates named counters and stage timings for one run."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._seconds: Dict[str, float] = {}
        self._calls: Dict[str, int] = {}

    # -- counters ---------------------------------------------------------

    def incr(self, name: str, amount: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + amount

    def count(self, name: str) -> int:
        return self._counters.get(name, 0)

    def counters(self, prefix: str = "") -> Dict[str, int]:
        """Plain ``{name: count}`` mapping, optionally prefix-filtered.

        ``counters("resilience.")`` is how callers read back what
        :meth:`~repro.resilience.supervisor.ResilienceStats.merge_into`
        folded in.
        """
        return {
            name: amount
            for name, amount in self._counters.items()
            if name.startswith(prefix)
        }

    # -- timers -----------------------------------------------------------

    def timer(self, name: str) -> _Timer:
        """``with registry.timer("stage"): ...`` charges the block."""
        return _Timer(self, name)

    def add_seconds(self, name: str, seconds: float, calls: int = 1) -> None:
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds
        self._calls[name] = self._calls.get(name, 0) + calls

    def seconds(self, name: str) -> float:
        return self._seconds.get(name, 0.0)

    def calls(self, name: str) -> int:
        return self._calls.get(name, 0)

    def stages(self) -> Iterator[Tuple[str, float, int]]:
        """(name, seconds, calls) per stage, hottest first."""
        for name in sorted(
            self._seconds, key=self._seconds.__getitem__, reverse=True
        ):
            yield name, self._seconds[name], self._calls[name]

    # -- aggregation ------------------------------------------------------

    def stage_seconds(self) -> Dict[str, float]:
        """Plain ``{stage: seconds}`` mapping (sweep-stats payload)."""
        return dict(self._seconds)

    def merge(self, other: "CounterRegistry") -> None:
        """Fold another registry's counters and timings into this one."""
        for name, amount in other._counters.items():
            self.incr(name, amount)
        for name, seconds in other._seconds.items():
            self.add_seconds(name, seconds, other._calls.get(name, 0))

    def merge_seconds(self, stage_seconds: Mapping[str, float]) -> None:
        """Fold a plain ``{stage: seconds}`` mapping (one call each)."""
        for name, seconds in stage_seconds.items():
            self.add_seconds(name, seconds)

    def snapshot(self) -> Dict[str, object]:
        return {
            "counters": dict(self._counters),
            "timers": {
                name: {
                    "seconds": self._seconds[name],
                    "calls": self._calls.get(name, 0),
                }
                for name in self._seconds
            },
        }

    def format_table(self) -> str:
        """Fixed-width hot-stage breakdown for CLI output."""
        total = sum(self._seconds.values())
        lines = [f"{'stage':24s} {'seconds':>10s} {'calls':>8s} {'share':>7s}"]
        for name, seconds, calls in self.stages():
            share = seconds / total if total > 0 else 0.0
            lines.append(
                f"{name:24s} {seconds:10.4f} {calls:8d} {share:6.1%}"
            )
        for name in sorted(self._counters):
            lines.append(
                f"{name:24s} {'-':>10s} {self._counters[name]:8d} {'-':>7s}"
            )
        return "\n".join(lines)
