"""JSONL event traces: the serialized form of the observer stream.

A recorded run is a text file of one JSON object per line (schema
version :data:`EVENT_SCHEMA_VERSION`; the full grammar is documented in
``docs/OBSERVABILITY.md``). The stream is framed per slot:

``header`` → (``slot`` … events … ``slot_end`` | ``idle`` | ``flush``
| ``pstate``)* → ``end``

* ``header`` carries the schema version, the switch configuration
  digest (ports, buffer size, speedup, discipline) and free-form
  context (panel name, policy, seed).
* ``slot`` / ``slot_end`` frame one simulated slot; ``arr`` / ``dec`` /
  ``push`` / ``tx`` lines appear between them in engine order.
* ``idle`` records a fast-forwarded empty-buffer stretch *explicitly* —
  a trace never silently skips slots, so replay can account for every
  slot of the clock.
* ``pstate`` (schema >= 2) records a port admin-state change applied
  between slot frames; a down event carries the count of packets
  deterministically reclaimed (flushed) from that port's queue.
* ``end`` closes the stream and embeds the live
  :meth:`~repro.core.metrics.SwitchMetrics.snapshot` of the recording
  run, which is what makes every trace a self-checking artifact: the
  replayer re-derives metrics from the events alone and compares
  byte-for-byte (see :mod:`repro.obs.replay`).

Floats are serialized with :func:`json.dumps`, whose ``repr``-based
formatting round-trips exactly — byte-equality of replayed metrics is
therefore a meaningful contract, not an approximation.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import (
    IO,
    TYPE_CHECKING,
    Dict,
    Iterator,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.core.errors import TraceError
from repro.core.metrics import SwitchMetrics
from repro.obs.observer import PacketEvent, SlotObserver
from repro.resilience.atomic import tmp_path_for

if TYPE_CHECKING:
    from repro.core.config import SwitchConfig
    from repro.policies.base import Policy
    from repro.traffic.trace import Trace

#: Version of the JSONL event grammar; bumped on incompatible changes.
#: Version 2 added the ``pstate`` port-churn event; version-1 traces
#: (which cannot contain one) remain readable.
EVENT_SCHEMA_VERSION = 2

#: Schema versions :func:`read_events` accepts.
SUPPORTED_SCHEMA_VERSIONS = (1, 2)

_Sink = Union[str, Path, IO[str]]


def _dumps(obj: Mapping[str, object]) -> str:
    return json.dumps(obj, separators=(",", ":"))


class JsonlTraceWriter(SlotObserver):
    """A :class:`SlotObserver` that streams events to a JSONL sink.

    ``sink`` may be a path (opened and owned by the writer) or any
    text-mode file object (ownership stays with the caller). The header
    line is written on construction; call :meth:`write_end` (or use the
    writer as a context manager around a run and call it before exit)
    to close the stream with the recording run's metrics snapshot.

    Path sinks are published *atomically*: events stream to a sibling
    temp file, which is renamed onto the target only when the stream
    was properly terminated with :meth:`write_end`. A recording that
    crashes, is killed, or calls :meth:`abort` leaves no file at the
    target path — a trace on disk is therefore always complete
    (header through ``end``), never torn. File-object sinks keep the
    caller's semantics untouched.
    """

    def __init__(
        self,
        sink: _Sink,
        *,
        header: Optional[Mapping[str, object]] = None,
    ) -> None:
        self._final_path: Optional[Path] = None
        self._tmp_path: Optional[Path] = None
        if isinstance(sink, (str, Path)):
            self._final_path = Path(sink)
            self._final_path.parent.mkdir(parents=True, exist_ok=True)
            self._tmp_path = tmp_path_for(self._final_path)
            # repro: allow[RC403] -- streams to the atomic module's sibling tmp path; close() publishes via os.replace, abort() discards
            self._handle: IO[str] = self._tmp_path.open(
                "w", encoding="utf-8"
            )
            self._owns_handle = True
        else:
            self._handle = sink
            self._owns_handle = False
        self._closed = False
        self._ended = False
        self.events_written = 0
        head: Dict[str, object] = {
            "t": "header",
            "schema": EVENT_SCHEMA_VERSION,
        }
        if header:
            head.update(header)
        self._write(head)

    # -- plumbing ---------------------------------------------------------

    def _write(self, obj: Mapping[str, object]) -> None:
        self._handle.write(_dumps(obj) + "\n")
        self.events_written += 1

    def write_end(self, metrics: Optional[SwitchMetrics] = None) -> None:
        """Write the ``end`` line (with the live metrics snapshot when
        given) and close the stream; idempotent."""
        if self._closed:
            return
        tail: Dict[str, object] = {"t": "end"}
        if metrics is not None:
            tail["metrics"] = metrics.snapshot()
        self._write(tail)
        self._ended = True
        self.close()

    def close(self) -> None:
        """Close the stream; for path sinks, publish or discard.

        A terminated stream (``write_end`` was called) is fsynced and
        renamed onto the target path; an unterminated one is discarded,
        so the target never holds a torn trace. Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        if not self._owns_handle:
            self._handle.flush()
            return
        try:
            if self._ended:
                self._handle.flush()
                os.fsync(self._handle.fileno())
        finally:
            self._handle.close()
        assert self._tmp_path is not None and self._final_path is not None
        if self._ended:
            os.replace(self._tmp_path, self._final_path)
        else:
            self._tmp_path.unlink(missing_ok=True)

    def abort(self) -> None:
        """Discard the recording: close the stream without publishing."""
        self._ended = False
        self.close()

    def __enter__(self) -> "JsonlTraceWriter":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    # -- observer hooks ---------------------------------------------------

    def on_slot_begin(self, slot: int, n_arrivals: int) -> None:
        self._write({"t": "slot", "slot": slot, "arrivals": n_arrivals})

    def on_arrival(self, slot: int, packet: PacketEvent) -> None:
        self._write(
            {
                "t": "arr",
                "slot": slot,
                "port": packet.port,
                "work": packet.work,
                "value": packet.value,
                "aslot": packet.arrival_slot,
            }
        )

    def on_decision(
        self, slot: int, action: str, victim_port: Optional[int]
    ) -> None:
        line: Dict[str, object] = {"t": "dec", "slot": slot, "action": action}
        if victim_port is not None:
            line["victim"] = victim_port
        self._write(line)

    def on_push_out(self, slot: int, victim: PacketEvent) -> None:
        self._write(
            {
                "t": "push",
                "slot": slot,
                "port": victim.port,
                "value": victim.value,
                "residual": victim.residual,
            }
        )

    def on_transmit(self, slot: int, packet: PacketEvent) -> None:
        self._write(
            {
                "t": "tx",
                "slot": slot,
                "port": packet.port,
                "value": packet.value,
                "aslot": packet.arrival_slot,
            }
        )

    def on_flush(
        self, slot: int, dropped: Tuple[PacketEvent, ...]
    ) -> None:
        ports = [0] * (max((p.port for p in dropped), default=-1) + 1)
        for packet in dropped:
            ports[packet.port] += 1
        self._write(
            {"t": "flush", "slot": slot, "count": len(dropped), "ports": ports}
        )

    def on_port_state(
        self, slot: int, port: int, up: bool, reclaimed: Tuple[PacketEvent, ...]
    ) -> None:
        self._write(
            {
                "t": "pstate",
                "slot": slot,
                "port": port,
                "up": bool(up),
                "count": len(reclaimed),
            }
        )

    def on_idle(self, slot: int, n_slots: int) -> None:
        self._write({"t": "idle", "slot": slot, "n": n_slots})

    def on_slot_end(self, slot: int, occupancy: int) -> None:
        self._write({"t": "slot_end", "slot": slot, "occ": occupancy})


def read_events(source: _Sink) -> Iterator[Dict[str, object]]:
    """Yield event dicts from a JSONL trace, validating basic shape.

    Raises :class:`~repro.core.errors.TraceError` on malformed lines,
    missing/duplicate headers, or an unsupported schema version.
    """
    if isinstance(source, (str, Path)):
        handle: IO[str] = Path(source).open("r", encoding="utf-8")
        owns = True
    else:
        handle = source
        owns = False
    try:
        saw_header = False
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceError(
                    f"bad event-trace line {lineno}: {exc}"
                ) from exc
            if not isinstance(event, dict) or "t" not in event:
                raise TraceError(
                    f"event-trace line {lineno} is not an event object"
                )
            if event["t"] == "header":
                if saw_header:
                    raise TraceError(
                        f"duplicate header at line {lineno}"
                    )
                saw_header = True
                schema = event.get("schema")
                if schema not in SUPPORTED_SCHEMA_VERSIONS:
                    raise TraceError(
                        f"event trace has schema {schema!r}, this reader "
                        f"supports {SUPPORTED_SCHEMA_VERSIONS}"
                    )
            elif not saw_header:
                raise TraceError(
                    "event trace does not start with a header line"
                )
            yield event
        if not saw_header:
            raise TraceError("event trace is empty (no header line)")
    finally:
        if owns:
            handle.close()


def record_trace(
    policy: "Policy",
    trace: "Trace",
    config: "SwitchConfig",
    sink: _Sink,
    *,
    flush_every: Optional[int] = None,
    drain_slots: int = 0,
    fast_path: bool = True,
    header: Optional[Mapping[str, object]] = None,
) -> SwitchMetrics:
    """Run ``policy`` over ``trace`` while recording a JSONL event trace.

    Convenience glue used by ``repro trace`` and the replay test suite:
    builds a :class:`~repro.analysis.competitive.PolicySystem` with the
    writer attached, drives it through
    :func:`~repro.analysis.competitive.run_system`, and closes the
    stream with the live metrics snapshot. Returns the live metrics so
    callers can compare against the replayed reconstruction.
    """
    from repro.analysis.competitive import PolicySystem, run_system

    head: Dict[str, object] = {
        "policy": getattr(policy, "name", type(policy).__name__),
        "n_ports": config.n_ports,
        "buffer_size": config.buffer_size,
        "speedup": config.speedup,
        "discipline": config.discipline.value,
    }
    if header:
        head.update(header)
    writer = JsonlTraceWriter(sink, header=head)
    try:
        system = PolicySystem(config, policy, fast_path=fast_path)
        metrics = run_system(
            system,
            trace,
            flush_every=flush_every,
            drain_slots=drain_slots,
            observer=writer,
        )
        writer.write_end(metrics)
    except BaseException:
        # A failed recording publishes nothing: the sink path either
        # keeps its previous contents or stays absent.
        writer.abort()
        raise
    finally:
        writer.close()
    return metrics
