"""The slot-observer protocol: structured events from a running switch.

PR 2 made the simulation core fast but opaque: victim selection flows
through incremental aggregate orderings whose only audit is the opt-in
invariant sweep. The observer protocol restores packet-level visibility
without giving it back in speed: a switch carries a *nullable observer
slot*, and with the slot empty the engine pays exactly one ``is None``
check per arrival (fenced by ``benchmarks/test_fastpath_perf.py``).

Design rules
------------
* **Observers are read-only.** Hooks never receive live engine objects —
  packets are delivered as frozen :class:`PacketEvent` snapshots and all
  other arguments are scalars. An observer that tries to assign to an
  event raises ``dataclasses.FrozenInstanceError``; there is simply no
  handle through which a hook can perturb the simulation. The
  differential suite (``tests/test_obs_noop.py``) checks both halves:
  attached-vs-detached runs are decision-identical, and mutation
  attempts raise.
* **Every observable state change has a hook.** The event vocabulary is
  exactly the model's: slot framing, arrivals, decisions, push-outs,
  transmissions, flushes, and idle fast-forwards (which are *explicit*
  events, so a recorded trace never silently skips slots).

:class:`SlotObserver` is both the protocol and a no-op base class;
concrete observers (:class:`~repro.obs.trace_io.JsonlTraceWriter`,
collectors in tests) override only the hooks they care about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.packet import Packet


@dataclass(frozen=True, slots=True)
class PacketEvent:
    """An immutable snapshot of one packet at observation time.

    Field names mirror :class:`~repro.core.packet.Packet` on purpose:
    the replay layer feeds these objects straight back into
    :class:`~repro.core.metrics.SwitchMetrics` recording hooks, which
    only read ``port`` / ``value`` / ``arrival_slot``.
    """

    port: int
    work: int
    value: float
    arrival_slot: int
    seq: int
    residual: int

    @classmethod
    def of(cls, packet: Packet) -> "PacketEvent":
        return cls(
            port=packet.port,
            work=packet.work,
            value=packet.value,
            arrival_slot=packet.arrival_slot,
            seq=packet.seq,
            residual=packet.residual,
        )


class SlotObserver:
    """Per-slot event hooks; the default implementation observes nothing.

    Hook order within one slot is fixed by the engine:

    ``on_slot_begin`` → (``on_arrival`` → [``on_push_out``] →
    ``on_decision``)* → ``on_transmit``* → ``on_slot_end``.

    ``on_flush`` fires between slots when the driver clears the buffer;
    ``on_idle`` replaces the whole begin/end framing for fast-forwarded
    empty-buffer stretches.
    """

    __slots__ = ()

    def on_slot_begin(self, slot: int, n_arrivals: int) -> None:
        """A slot's arrival phase is about to start."""

    def on_arrival(self, slot: int, packet: PacketEvent) -> None:
        """A packet was offered to the admission policy."""

    def on_decision(
        self, slot: int, action: str, victim_port: Optional[int]
    ) -> None:
        """The policy's verdict for the most recent arrival.

        ``action`` is the :class:`~repro.core.decisions.Action` value
        string (``accept`` / ``drop`` / ``push_out``).
        """

    def on_push_out(self, slot: int, victim: PacketEvent) -> None:
        """A buffered packet was evicted to make room for an arrival.

        Fires *before* the matching ``on_decision`` (the eviction is part
        of executing the decision), with the victim's residual work as it
        stood at eviction time.
        """

    def on_transmit(self, slot: int, packet: PacketEvent) -> None:
        """A packet completed its work and left the switch."""

    def on_flush(
        self, slot: int, dropped: Tuple[PacketEvent, ...]
    ) -> None:
        """A flushout cleared the buffer; ``dropped`` earned no credit."""

    def on_port_state(
        self,
        slot: int,
        port: int,
        up: bool,
        reclaimed: Tuple[PacketEvent, ...],
    ) -> None:
        """``port`` changed admin state at the start of ``slot``.

        On a down transition ``reclaimed`` holds the packets whose buffer
        space was reclaimed (accounted as flushed, no transmission
        credit); on an up transition it is empty. Fires between slots,
        before the slot's ``on_slot_begin``.
        """

    def on_idle(self, slot: int, n_slots: int) -> None:
        """``n_slots`` empty-buffer slots starting at ``slot`` were
        fast-forwarded in one step (no per-slot framing is emitted)."""

    def on_slot_end(self, slot: int, occupancy: int) -> None:
        """The slot finished with ``occupancy`` packets still buffered."""
