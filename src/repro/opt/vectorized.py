"""Array-backed OPT surrogates, decision-identical to the ``bisect`` ones.

The reference surrogates (:mod:`repro.opt.surrogate`) keep one sorted
list of :class:`~repro.core.packet.Packet` objects and, per slot,
decrement a prefix (SRPT) or pop a suffix (MaxValue). At paper scale the
per-packet ``fresh_copy`` + ``insort`` + per-core prefix decrement
dominate the sweep's ``opt_run`` stage. These variants keep the same
logical single queue as flat columns and replace the per-core decrement
with O(completions) bookkeeping:

* :class:`VectorizedSrptSurrogate` partitions the sorted-by-residual
  queue at position ``cores`` into an *active* pool — stored as
  absolute completion ticks (``tick + residual``), so advancing one
  phase tick decrements every active packet at once — and a *waiting*
  pool stored as residuals (which do not change while waiting). The
  boundary is maintained exactly: inserts, evictions, completions, and
  promotions all preserve the order the reference's single sorted list
  would have, including ``bisect``'s placement of equal keys, so every
  admit/push-out/drop decision and every completion order match the
  reference bit for bit.

* :class:`VectorizedMaxValueSurrogate` keeps the ascending value column
  with a head pointer; eviction consumes the head, transmission pops
  the tail — no packet objects, no key lambdas.

Both are selected through ``make_surrogate(..., engine="vectorized")``
and expose the same :class:`~repro.opt.surrogate.System` surface plus a
``run_slot_columns`` entry point that ingests
:class:`~repro.traffic.columnar.ColumnarTrace` spans without packet
materialization. Like fast-mode :class:`~repro.core.columnar.
VectorizedSwitch`, ``run_slot`` returns ``[]``: transmissions are
accounted in metrics only (the competitive runner ignores the return
value), and admitted entries carry no sequence numbers. All
decision-relevant and metrics-relevant quantities — counters, per-port
drop/transmit splits, the float accumulation order of
``transmitted_value`` — are identical to the reference, which the
differential suite (``tests/test_surrogate_vectorized.py``) enforces.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Optional, Sequence, Tuple

try:  # pure-stdlib installs fall back to the per-packet loop
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy leg
    np = None  # type: ignore[assignment]

from repro.core.config import SwitchConfig
from repro.core.errors import TraceError
from repro.core.hotpath import hot_path
from repro.core.metrics import SwitchMetrics
from repro.core.packet import Packet

__all__ = ["VectorizedSrptSurrogate", "VectorizedMaxValueSurrogate"]

#: Head regions shorter than this are not worth compacting away.
_COMPACT_MIN = 512

#: Bursts at or below this size skip the vector filter: slicing,
#: comparing, and bincounting a handful of packets costs more than the
#: per-packet loop it replaces.
_BATCH_MIN = 32


class _ColumnSurrogate:
    """Shared surface of the two vectorized surrogate variants."""

    #: Handshake read by :func:`repro.analysis.competitive.run_system`:
    #: when set, ``run_slot_columns`` is fed the trace's cached
    #: int64/float64 arrays (:meth:`~repro.traffic.columnar.
    #: ColumnarTrace.array_columns`) instead of the canonical lists,
    #: which enables the batched congested-path filter below.
    prefers_array_columns = True

    def __init__(
        self, config: SwitchConfig, cores: Optional[int] = None
    ) -> None:
        """``cores`` defaults to the paper's ``n * C``."""
        self.config = config
        self.cores = (
            cores if cores is not None else config.n_ports * config.speedup
        )
        if self.cores < 1:
            raise TraceError(f"surrogate needs >= 1 core, got {self.cores}")
        self.buffer_size = config.buffer_size
        self.metrics = SwitchMetrics(n_ports=config.n_ports)
        self._port_up: List[bool] = [True] * config.n_ports
        self._n_down = 0

    @property
    def backlog(self) -> int:
        raise NotImplementedError

    def flush(self) -> int:
        raise NotImplementedError

    def fast_forward(self, n_slots: int) -> None:
        """Advance over ``n_slots`` idle slots (empty buffer required)."""
        if self.backlog:
            raise TraceError(
                f"fast_forward with {self.backlog} buffered packets"
            )
        self.metrics.record_idle_slots(n_slots)

    def set_port_state(self, port: int, up: bool) -> int:
        """Admin-up/down ``port``; returns the packets reclaimed.

        Mirrors :meth:`repro.opt.surrogate._SinglePQSurrogate.
        set_port_state`: buffered packets destined to a down port are
        removed (order-preserving, so the sort invariants survive) and
        accounted as flushed.
        """
        if not 0 <= port < self.config.n_ports:
            raise TraceError(
                f"port-state event for port {port}, switch has "
                f"{self.config.n_ports} ports"
            )
        up = bool(up)
        if up == self._port_up[port]:
            state = "up" if up else "down"
            raise TraceError(f"port {port} is already {state}")
        if up:
            self._port_up[port] = True
            self._n_down -= 1
            return 0
        self._port_up[port] = False
        self._n_down += 1
        removed = self._reclaim_port(port)
        if removed:
            self.metrics.flushed += removed
        return removed

    def _reclaim_port(self, port: int) -> int:
        """Remove every buffered packet for ``port``; return the count."""
        raise NotImplementedError


class VectorizedSrptSurrogate(_ColumnSurrogate):
    """Processing-model surrogate over an expiry-calendar partition.

    Logical state is the reference's single list sorted ascending by
    residual, split at position ``min(cores, len)``:

    * active pool — ``_act_exp`` holds absolute completion ticks
      (``tick + residual``), ``_act_rec`` the ``(port, value)``
      payloads, live region from ``_ah``. Sorted by tick; a phase is
      ``tick += 1`` plus popping heads whose tick arrived.
    * waiting pool — ``_wait_res`` holds residuals (constant while
      waiting), ``_wait_rec`` payloads, live region from ``_wh``.

    Invariant: the waiting pool is non-empty only while the active pool
    holds exactly ``cores`` packets, and concatenating active (as
    residuals ``exp - tick``) with waiting reproduces the reference
    list order exactly.
    """

    def __init__(
        self, config: SwitchConfig, cores: Optional[int] = None
    ) -> None:
        super().__init__(config, cores)
        self._tick = 0
        self._act_exp: List[int] = []
        self._act_rec: List[Tuple[int, float]] = []
        self._ah = 0
        self._wait_res: List[int] = []
        self._wait_rec: List[Tuple[int, float]] = []
        self._wh = 0
        # Maintained occupancy counter: computing the backlog from the
        # four pool bounds costs four ``len`` calls, and the admit path
        # reads it per packet. Accept +1, completion -1, push-out 0.
        self._size = 0

    @property
    def backlog(self) -> int:
        return self._size

    def flush(self) -> int:
        dropped = self._size
        self.metrics.flushed += dropped
        self._act_exp.clear()
        self._act_rec.clear()
        self._ah = 0
        self._wait_res.clear()
        self._wait_rec.clear()
        self._wh = 0
        self._size = 0
        return dropped

    def _reclaim_port(self, port: int) -> int:
        """Filter both pools, then restore the active/waiting boundary.

        Order-preserving removal keeps each pool sorted and keeps the
        concatenation (active residuals, then waiting) equal to the
        reference's filtered single list. Removals can leave the active
        pool short of ``cores`` while the waiting pool is non-empty, so
        waiting heads re-promote exactly as after a completion — the
        appended ticks are >= every surviving active tick.
        """
        act_exp = self._act_exp
        act_rec = self._act_rec
        keep = [
            j
            for j in range(self._ah, len(act_exp))
            if act_rec[j][0] != port
        ]
        removed = len(act_exp) - self._ah - len(keep)
        act_exp = [act_exp[j] for j in keep]
        act_rec = [act_rec[j] for j in keep]
        wait_res = self._wait_res
        wait_rec = self._wait_rec
        wkeep = [
            j
            for j in range(self._wh, len(wait_res))
            if wait_rec[j][0] != port
        ]
        removed += len(wait_res) - self._wh - len(wkeep)
        wait_res = [wait_res[j] for j in wkeep]
        wait_rec = [wait_rec[j] for j in wkeep]
        promote = min(self.cores - len(act_exp), len(wait_res))
        if promote > 0:
            tick = self._tick
            act_exp.extend(tick + res for res in wait_res[:promote])
            act_rec.extend(wait_rec[:promote])
            del wait_res[:promote]
            del wait_rec[:promote]
        self._act_exp = act_exp
        self._act_rec = act_rec
        self._ah = 0
        self._wait_res = wait_res
        self._wait_rec = wait_rec
        self._wh = 0
        self._size -= removed
        return removed

    @hot_path
    def _insert(self, residual: int, port: int, value: float) -> None:
        """Place one packet where the reference's ``insort`` would.

        ``bisect_right`` over the active ticks mirrors ``insort`` over
        the global residual list: when the key ties across the
        active/waiting boundary the active-side probe lands past the
        active tail, deferring to the waiting-side probe — exactly the
        reference's after-all-equals placement.
        """
        act_exp = self._act_exp
        ah = self._ah
        key = self._tick + residual
        if len(act_exp) - ah < self.cores:
            pos = bisect_right(act_exp, key, ah)
            act_exp.insert(pos, key)
            self._act_rec.insert(pos, (port, value))
            return
        pos = bisect_right(act_exp, key, ah)
        if pos < len(act_exp):
            # Belongs inside the active window: the previous active
            # tail (the largest active residual) demotes to the front
            # of the waiting pool, preserving the global order.
            act_exp.insert(pos, key)
            self._act_rec.insert(pos, (port, value))
            demoted_res = act_exp.pop() - self._tick
            demoted_rec = self._act_rec.pop()
            wh = self._wh
            if wh > 0:
                wh -= 1
                self._wait_res[wh] = demoted_res
                self._wait_rec[wh] = demoted_rec
                self._wh = wh
            else:
                self._wait_res.insert(0, demoted_res)
                self._wait_rec.insert(0, demoted_rec)
        else:
            wpos = bisect_right(self._wait_res, residual, self._wh)
            self._wait_res.insert(wpos, residual)
            self._wait_rec.insert(wpos, (port, value))

    @hot_path
    def _admit_fields(self, port: int, work: int, value: float) -> None:
        metrics = self.metrics
        if self._size < self.buffer_size:
            self._insert(work, port, value)
            self._size += 1
            metrics.accepted += 1
            return
        # Push out the largest-residual packet when the arrival is
        # strictly smaller; the global tail is the waiting tail when
        # the waiting pool is non-empty, else the active tail.
        lw = len(self._wait_res) - self._wh
        if self._size:
            if lw:
                victim_res = self._wait_res[-1]
            else:
                victim_res = self._act_exp[-1] - self._tick
            if victim_res > work:
                if lw:
                    self._wait_res.pop()
                    victim_port = self._wait_rec.pop()[0]
                else:
                    self._act_exp.pop()
                    victim_port = self._act_rec.pop()[0]
                metrics.pushed_out += 1
                metrics.dropped_by_port[victim_port] += 1
                self._insert(work, port, value)
                metrics.accepted += 1
                return
        metrics.dropped += 1
        metrics.dropped_by_port[port] += 1

    @hot_path
    def _transmit(self) -> None:
        """One phase: advance the tick, complete, refill from waiting.

        Completions pop from the active head in pool order — the same
        order the reference pops zero-residual heads — so the float
        accumulation order of ``transmitted_value`` matches exactly.
        Promoted packets enter with their full residual: the reference
        decrements only the first ``cores`` positions, and a promotion
        happens only after a completion freed one of those positions.
        """
        tick = self._tick + 1
        self._tick = tick
        act_exp = self._act_exp
        act_rec = self._act_rec
        ah = self._ah
        metrics = self.metrics
        end = len(act_exp)
        if ah < end and act_exp[ah] == tick:
            tx_by_port = metrics.transmitted_by_port
            txv_by_port = metrics.transmitted_value_by_port
            done = 0
            while ah < end and act_exp[ah] == tick:
                port, value = act_rec[ah]
                metrics.transmitted_value += value
                tx_by_port[port] += 1
                txv_by_port[port] += value
                ah += 1
                done += 1
            metrics.transmitted_packets += done
            self._size -= done
            self._ah = ah
            # Refill the freed active positions from the waiting head;
            # appending keeps the pool sorted (every waiting residual
            # is >= every active one, and the waiting pool ascends).
            wait_res = self._wait_res
            wait_rec = self._wait_rec
            wh = self._wh
            wend = len(wait_res)
            cores = self.cores
            live = len(act_exp) - ah
            while wh < wend and live < cores:
                act_exp.append(tick + wait_res[wh])
                act_rec.append(wait_rec[wh])
                wh += 1
                live += 1
            self._wh = wh
            if ah > _COMPACT_MIN and ah * 2 > len(act_exp):
                del act_exp[:ah]
                del act_rec[:ah]
                self._ah = 0
            if wh > _COMPACT_MIN and wh * 2 > len(wait_res):
                del wait_res[:wh]
                del wait_rec[:wh]
                self._wh = 0

    def run_slot(self, arrivals: Sequence[Packet]) -> List[Packet]:
        """One slot over packet objects; returns ``[]`` (fast mode)."""
        metrics = self.metrics
        if self._n_down:
            port_up = self._port_up
            dbp = metrics.dropped_by_port
            for packet in arrivals:
                metrics.arrived += 1
                if not port_up[packet.port]:
                    metrics.dropped += 1
                    dbp[packet.port] += 1
                    continue
                self._admit_fields(packet.port, packet.work, packet.value)
        else:
            for packet in arrivals:
                metrics.arrived += 1
                self._admit_fields(packet.port, packet.work, packet.value)
        self._transmit()
        metrics.record_slot(self.backlog)
        return []

    @hot_path
    def run_slot_columns(
        self,
        ports: Sequence[int],
        works: Sequence[int],
        values: Sequence[float],
        arrivals: Optional[Sequence[int]],
        lo: int,
        hi: int,
    ) -> List[Packet]:
        """One slot straight from trace columns (span ``[lo, hi)``).

        While any port is down the span takes the exact per-packet
        admit loop with the down filter in front: churn slots are rare
        and the batch filter's full-buffer monotonicity argument does
        not account for engine-level drops.

        With ndarray columns the congested case is batch-filtered.
        Once the buffer is full, the eviction threshold (the largest
        buffered residual) can only *decrease* during a slot's
        admission phase — an accept replaces the maximum with something
        strictly smaller, a drop changes nothing — so any arrival whose
        work is already ``>=`` the threshold at the start of the
        congested stretch is dead on arrival no matter what happens in
        between. Those are counted with one vector compare plus a
        bincount; only the arrivals below the threshold (the ones that
        can actually displace somebody) run the exact sequential admit.
        Every counter lands exactly where the per-packet loop puts it.
        """
        metrics = self.metrics
        m = hi - lo
        metrics.arrived += m
        if self._n_down:
            kp = ports[lo:hi]
            kw = works[lo:hi]
            kv = values[lo:hi]
            if np is not None and isinstance(kw, np.ndarray):
                kp = kp.tolist()
                kw = kw.tolist()
                kv = kv.tolist()
            port_up = self._port_up
            dbp = metrics.dropped_by_port
            for port, work, value in zip(kp, kw, kv):
                if not port_up[port]:
                    metrics.dropped += 1
                    dbp[port] += 1
                    continue
                self._admit_fields(port, work, value)
        elif m and np is not None and isinstance(works, np.ndarray):
            # The whole slot runs on hoisted pool locals: one attribute
            # load per slot instead of several per packet.
            act_exp = self._act_exp
            act_rec = self._act_rec
            wait_res = self._wait_res
            wait_rec = self._wait_rec
            ah = self._ah
            wh = self._wh
            tick = self._tick
            cores = self.cores
            insort = bisect_right
            i = lo
            free = self.buffer_size - self._size
            if free > 0:
                # Room left: the reference accepts unconditionally.
                stop = hi if m <= free else lo + free
                kp = ports[i:stop].tolist()
                kw = works[i:stop].tolist()
                kv = values[i:stop].tolist()
                for port, work, value in zip(kp, kw, kv):
                    # Same branch structure as ``_insert``, on locals.
                    key = tick + work
                    if len(act_exp) - ah < cores:
                        pos = insort(act_exp, key, ah)
                        act_exp.insert(pos, key)
                        act_rec.insert(pos, (port, value))
                    else:
                        pos = insort(act_exp, key, ah)
                        if pos < len(act_exp):
                            act_exp.insert(pos, key)
                            act_rec.insert(pos, (port, value))
                            demoted_res = act_exp.pop() - tick
                            demoted_rec = act_rec.pop()
                            if wh > 0:
                                wh -= 1
                                wait_res[wh] = demoted_res
                                wait_rec[wh] = demoted_rec
                            else:
                                wait_res.insert(0, demoted_res)
                                wait_rec.insert(0, demoted_rec)
                        else:
                            wpos = insort(wait_res, work, wh)
                            wait_res.insert(wpos, work)
                            wait_rec.insert(wpos, (port, value))
                metrics.accepted += stop - lo
                self._size += stop - lo
                i = stop
            if i < hi:
                n_rest = hi - i
                dbp = metrics.dropped_by_port
                if self._size:
                    # Congested stretch: the buffer stays exactly full
                    # (every accept evicts), no completions interleave,
                    # so the whole admit/evict state machine runs on
                    # the hoisted locals with a live threshold.
                    thr = (
                        wait_res[-1]
                        if len(wait_res) - wh
                        else act_exp[-1] - tick
                    )
                    if n_rest > _BATCH_MIN:
                        w = works[i:hi]
                        keep = w < thr
                        kept = np.flatnonzero(keep)
                        nk = len(kept)
                        if nk < n_rest:
                            metrics.dropped += n_rest - nk
                            counts = np.bincount(
                                ports[i:hi][~keep], minlength=len(dbp)
                            )
                            for port in np.flatnonzero(counts).tolist():
                                dbp[port] += int(counts[port])
                        if nk:
                            kp = ports[i:hi][keep].tolist()
                            kw = w[keep].tolist()
                            kv = values[i:hi][keep].tolist()
                        else:
                            kp = kw = kv = ()
                    else:
                        # Small rest: the vector setup costs more than
                        # it saves; the live-threshold loop below is
                        # already exact for unfiltered arrivals.
                        kp = ports[i:hi].tolist()
                        kw = works[i:hi].tolist()
                        kv = values[i:hi].tolist()
                    accepted = 0
                    dropped = 0
                    for port, work, value in zip(kp, kw, kv):
                        if work >= thr:
                            dropped += 1
                            dbp[port] += 1
                            continue
                        # Evict the buffered maximum (strictly
                        # larger): waiting tail, else active tail.
                        if len(wait_res) - wh:
                            wait_res.pop()
                            dbp[wait_rec.pop()[0]] += 1
                        else:
                            act_exp.pop()
                            dbp[act_rec.pop()[0]] += 1
                        accepted += 1
                        # Insert where the reference insort would
                        # (same branch structure as ``_insert``).
                        key = tick + work
                        if len(act_exp) - ah < cores:
                            pos = insort(act_exp, key, ah)
                            act_exp.insert(pos, key)
                            act_rec.insert(pos, (port, value))
                        else:
                            pos = insort(act_exp, key, ah)
                            if pos < len(act_exp):
                                act_exp.insert(pos, key)
                                act_rec.insert(pos, (port, value))
                                demoted_res = act_exp.pop() - tick
                                demoted_rec = act_rec.pop()
                                if wh > 0:
                                    wh -= 1
                                    wait_res[wh] = demoted_res
                                    wait_rec[wh] = demoted_rec
                                else:
                                    wait_res.insert(0, demoted_res)
                                    wait_rec.insert(0, demoted_rec)
                            else:
                                wpos = insort(wait_res, work, wh)
                                wait_res.insert(wpos, work)
                                wait_rec.insert(wpos, (port, value))
                        thr = (
                            wait_res[-1]
                            if len(wait_res) - wh
                            else act_exp[-1] - tick
                        )
                    metrics.accepted += accepted
                    metrics.pushed_out += accepted
                    metrics.dropped += dropped
                else:
                    # B == 0: nothing is ever admitted.
                    metrics.dropped += n_rest
                    counts = np.bincount(ports[i:hi], minlength=len(dbp))
                    for port in np.flatnonzero(counts).tolist():
                        dbp[port] += int(counts[port])
            self._wh = wh
        else:
            for i in range(lo, hi):
                self._admit_fields(ports[i], works[i], values[i])
        self._transmit()
        metrics.record_slot(self.backlog)
        return []


class VectorizedMaxValueSurrogate(_ColumnSurrogate):
    """Value-model surrogate over an ascending value column.

    ``_vals`` ascends; the live region starts at ``_h``. Eviction
    consumes the head (least valuable), transmission pops the tail
    (most valuable first), both matching the reference's pop order.
    """

    def __init__(
        self, config: SwitchConfig, cores: Optional[int] = None
    ) -> None:
        super().__init__(config, cores)
        self._vals: List[float] = []
        self._ports: List[int] = []
        self._h = 0

    @property
    def backlog(self) -> int:
        return len(self._vals) - self._h

    def flush(self) -> int:
        dropped = self.backlog
        self.metrics.flushed += dropped
        self._vals.clear()
        self._ports.clear()
        self._h = 0
        return dropped

    def _reclaim_port(self, port: int) -> int:
        """Filter the value column; order-preserving keeps it ascending."""
        vals = self._vals
        port_col = self._ports
        keep = [
            j for j in range(self._h, len(vals)) if port_col[j] != port
        ]
        removed = len(vals) - self._h - len(keep)
        if removed:
            self._vals = [vals[j] for j in keep]
            self._ports = [port_col[j] for j in keep]
            self._h = 0
        return removed

    @hot_path
    def _admit_fields(self, port: int, value: float) -> None:
        metrics = self.metrics
        vals = self._vals
        h = self._h
        if len(vals) - h < self.buffer_size:
            pos = bisect_right(vals, value, h)
            vals.insert(pos, value)
            self._ports.insert(pos, port)
            metrics.accepted += 1
            return
        if len(vals) - h and vals[h] < value:
            metrics.pushed_out += 1
            metrics.dropped_by_port[self._ports[h]] += 1
            h += 1
            self._h = h
            pos = bisect_right(vals, value, h)
            vals.insert(pos, value)
            self._ports.insert(pos, port)
            metrics.accepted += 1
            return
        metrics.dropped += 1
        metrics.dropped_by_port[port] += 1

    @hot_path
    def _transmit(self) -> None:
        vals = self._vals
        ports = self._ports
        h = self._h
        metrics = self.metrics
        count = len(vals) - h
        active = self.cores if self.cores < count else count
        if active:
            tx_by_port = metrics.transmitted_by_port
            txv_by_port = metrics.transmitted_value_by_port
            for _ in range(active):
                value = vals.pop()
                port = ports.pop()
                metrics.transmitted_value += value
                tx_by_port[port] += 1
                txv_by_port[port] += value
            metrics.transmitted_packets += active
        if h > _COMPACT_MIN and h * 2 > len(vals):
            del vals[:h]
            del ports[:h]
            self._h = 0

    def run_slot(self, arrivals: Sequence[Packet]) -> List[Packet]:
        """One slot over packet objects; returns ``[]`` (fast mode)."""
        metrics = self.metrics
        if self._n_down:
            port_up = self._port_up
            dbp = metrics.dropped_by_port
            for packet in arrivals:
                metrics.arrived += 1
                if not port_up[packet.port]:
                    metrics.dropped += 1
                    dbp[packet.port] += 1
                    continue
                self._admit_fields(packet.port, packet.value)
        else:
            for packet in arrivals:
                metrics.arrived += 1
                self._admit_fields(packet.port, packet.value)
        self._transmit()
        metrics.record_slot(self.backlog)
        return []

    @hot_path
    def run_slot_columns(
        self,
        ports: Sequence[int],
        works: Sequence[int],
        values: Sequence[float],
        arrivals: Optional[Sequence[int]],
        lo: int,
        hi: int,
    ) -> List[Packet]:
        """One slot straight from trace columns (span ``[lo, hi)``).

        Mirror image of the SRPT batch filter: once the buffer is full
        the eviction threshold (the *smallest* buffered value) can only
        *increase* during a slot's admission phase, so any arrival
        whose value is already ``<=`` the threshold at the start of the
        congested stretch is dead on arrival. See
        :meth:`VectorizedSrptSurrogate.run_slot_columns`.
        """
        metrics = self.metrics
        m = hi - lo
        metrics.arrived += m
        if self._n_down:
            # Churn fallback: see the SRPT twin.
            kp = ports[lo:hi]
            kv = values[lo:hi]
            if np is not None and isinstance(kv, np.ndarray):
                kp = kp.tolist()
                kv = kv.tolist()
            port_up = self._port_up
            dbp = metrics.dropped_by_port
            for port, value in zip(kp, kv):
                if not port_up[port]:
                    metrics.dropped += 1
                    dbp[port] += 1
                    continue
                self._admit_fields(port, value)
        elif m and np is not None and isinstance(values, np.ndarray):
            i = lo
            vals = self._vals
            port_col = self._ports
            h = self._h
            free = self.buffer_size - (len(vals) - h)
            insort = bisect_right
            if free > 0:
                stop = hi if m <= free else lo + free
                kp = ports[i:stop].tolist()
                kv = values[i:stop].tolist()
                for port, value in zip(kp, kv):
                    pos = insort(vals, value, h)
                    vals.insert(pos, value)
                    port_col.insert(pos, port)
                metrics.accepted += stop - lo
                i = stop
            if i < hi:
                n_rest = hi - i
                dbp = metrics.dropped_by_port
                if len(vals) - h:
                    # Congested stretch, mirrored from the SRPT path:
                    # the buffer stays full, the head (the eviction
                    # threshold) only moves up, everything runs on
                    # hoisted locals.
                    thr = vals[h]
                    if n_rest > _BATCH_MIN:
                        v = values[i:hi]
                        keep = v > thr
                        kept = np.flatnonzero(keep)
                        nk = len(kept)
                        if nk < n_rest:
                            metrics.dropped += n_rest - nk
                            counts = np.bincount(
                                ports[i:hi][~keep], minlength=len(dbp)
                            )
                            for port in np.flatnonzero(counts).tolist():
                                dbp[port] += int(counts[port])
                        if nk:
                            kp = ports[i:hi][keep].tolist()
                            kv = v[keep].tolist()
                        else:
                            kp = kv = ()
                    else:
                        # Small rest: see the SRPT twin.
                        kp = ports[i:hi].tolist()
                        kv = values[i:hi].tolist()
                    accepted = 0
                    dropped = 0
                    for port, value in zip(kp, kv):
                        if value <= thr:
                            dropped += 1
                            dbp[port] += 1
                            continue
                        dbp[port_col[h]] += 1
                        h += 1
                        pos = insort(vals, value, h)
                        vals.insert(pos, value)
                        port_col.insert(pos, port)
                        accepted += 1
                        thr = vals[h]
                    metrics.accepted += accepted
                    metrics.pushed_out += accepted
                    metrics.dropped += dropped
                    self._h = h
                else:
                    # B == 0: nothing is ever admitted.
                    metrics.dropped += n_rest
                    counts = np.bincount(ports[i:hi], minlength=len(dbp))
                    for port in np.flatnonzero(counts).tolist():
                        dbp[port] += int(counts[port])
        else:
            for i in range(lo, hi):
                self._admit_fields(ports[i], values[i])
        self._transmit()
        metrics.record_slot(self.backlog)
        return []
