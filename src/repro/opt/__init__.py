"""Reference algorithms the online policies are measured against."""

from repro.opt.exhaustive import TinyInstance, exhaustive_opt
from repro.opt.scripted import ScriptedPolicy
from repro.opt.surrogate import (
    MaxValueSurrogate,
    SrptSurrogate,
    System,
    make_surrogate,
)

__all__ = [
    "MaxValueSurrogate",
    "ScriptedPolicy",
    "SrptSurrogate",
    "System",
    "TinyInstance",
    "exhaustive_opt",
    "make_surrogate",
]
