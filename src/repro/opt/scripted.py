"""Clairvoyant admission plans replayed from trace annotations.

Each lower-bound proof in the paper describes an explicit strategy for the
optimal offline algorithm OPT ("OPT accepts one of each larger packet and
(B-3) packets of work 1..."). The adversarial trace builders in
:mod:`repro.traffic.adversarial` encode those strategies as per-packet
``opt_accept`` tags; :class:`ScriptedPolicy` replays them on a normal
shared-memory switch, producing exactly the OPT behaviour the proof
prescribes without the engine needing any clairvoyance.

Since the paper observes OPT can be assumed non-push-out (any pushed-out
packet might as well never have been admitted), a scripted plan only ever
accepts or drops.
"""

from __future__ import annotations

from repro.core.decisions import ACCEPT, DROP, Decision
from repro.core.errors import TraceError
from repro.core.packet import Packet
from repro.core.switch import SwitchView
from repro.policies.base import Policy


class ScriptedPolicy(Policy):
    """Accept exactly the packets whose ``opt_accept`` tag is true.

    Parameters
    ----------
    strict:
        When true (default), raise :class:`~repro.core.errors.TraceError`
        if the plan is infeasible — a tagged packet arrives into a full
        buffer, or a packet carries no tag at all. Lower-bound
        constructions are supposed to be exactly feasible, so infeasibility
        signals a bug in the trace builder rather than a condition to paper
        over. With ``strict=False`` untagged packets and overflow accepts
        degrade to drops.
    """

    name = "Scripted-OPT"
    is_push_out = False

    def __init__(self, strict: bool = True) -> None:
        self.strict = strict

    def admit(self, view: SwitchView, packet: Packet) -> Decision:
        if packet.opt_accept is None:
            if self.strict:
                raise TraceError(
                    f"packet {packet!r} carries no opt_accept tag; scripted "
                    "replay requires a fully annotated trace"
                )
            return DROP
        if not packet.opt_accept:
            return DROP
        if view.is_full:
            if self.strict:
                raise TraceError(
                    f"scripted plan accepts {packet!r} but the buffer is "
                    "full — the adversarial construction is infeasible"
                )
            return DROP
        return ACCEPT
