"""The paper's OPT surrogate: a single priority queue with ``n*C`` cores.

Section V-A: *"Since it is computationally prohibitive to compute the true
optimal policy, we used a single priority queue that first processes the
smallest packets (resp., packets with largest value) and has kC cores. This
algorithm has been proven optimal in the single queue model, so in case of
congestion it may perform even better than optimal in our model."*

Two variants implement the two models:

* :class:`SrptSurrogate` (processing model) — one shared buffer of ``B``
  packets kept in ascending residual-work order. Admission is the optimal
  single-queue push-out rule: accept when there is room, otherwise evict
  the largest-residual packet if it exceeds the arrival's work. Each slot,
  the ``n*C`` smallest-residual packets receive one cycle each.

* :class:`MaxValueSurrogate` (value model) — ascending value order;
  admission evicts the smallest value when the arrival is strictly more
  valuable; each slot the ``n*C`` most valuable packets transmit (unit
  work).

Both expose the :class:`System` interface (``run_slot`` / ``flush`` /
``metrics``) shared with policy-driven switches, so the competitive runner
treats them interchangeably.
"""

from __future__ import annotations

from bisect import insort
from typing import List, Protocol, Sequence

from repro.core.config import SwitchConfig
from repro.core.errors import ConfigError, TraceError
from repro.core.metrics import SwitchMetrics
from repro.core.packet import Packet


class System(Protocol):
    """Anything that can be driven slot-by-slot over a trace."""

    metrics: SwitchMetrics

    def run_slot(self, arrivals: Sequence[Packet]) -> List[Packet]:
        """Consume one slot's arrivals, transmit, return transmissions."""
        ...

    def flush(self) -> int:
        """Drop all buffered packets without credit; return the count."""
        ...

    @property
    def backlog(self) -> int:
        """Number of currently buffered packets."""
        ...


class _SinglePQSurrogate:
    """Shared machinery of the two surrogate variants."""

    def __init__(self, config: SwitchConfig, cores: int | None = None) -> None:
        """``cores`` defaults to the paper's ``n * C``."""
        self.config = config
        self.cores = (
            cores if cores is not None else config.n_ports * config.speedup
        )
        if self.cores < 1:
            raise TraceError(f"surrogate needs >= 1 core, got {self.cores}")
        self.buffer_size = config.buffer_size
        self.metrics = SwitchMetrics(n_ports=config.n_ports)
        self._items: List[Packet] = []  # kept sorted by the variant's key
        self._port_up: List[bool] = [True] * config.n_ports
        self._n_down = 0

    @property
    def backlog(self) -> int:
        return len(self._items)

    def flush(self) -> int:
        dropped = len(self._items)
        self.metrics.record_flush(self._items)
        self._items.clear()
        return dropped

    def run_slot(self, arrivals: Sequence[Packet]) -> List[Packet]:
        if self._n_down:
            for packet in arrivals:
                self.metrics.record_arrival(packet)
                if not self._port_up[packet.port]:
                    self.metrics.record_drop(packet)
                    continue
                self._admit(packet)
        else:
            for packet in arrivals:
                self.metrics.record_arrival(packet)
                self._admit(packet)
        done = self._transmit()
        self.metrics.record_transmissions(done)
        self.metrics.record_slot(len(self._items))
        return done

    def fast_forward(self, n_slots: int) -> None:
        """Advance over ``n_slots`` idle slots (empty buffer required)."""
        if self._items:
            raise TraceError(
                f"fast_forward with {len(self._items)} buffered packets"
            )
        self.metrics.record_idle_slots(n_slots)

    def set_port_state(self, port: int, up: bool) -> int:
        """Admin-up/down ``port``; returns the packets reclaimed.

        The surrogate has no per-port queues, but packets destined to a
        down port can never be delivered: they are removed from the
        single priority queue and accounted as flushed — the same
        deterministic reclaim the switch engines apply.
        """
        if not 0 <= port < self.config.n_ports:
            raise TraceError(
                f"port-state event for port {port}, switch has "
                f"{self.config.n_ports} ports"
            )
        up = bool(up)
        if up == self._port_up[port]:
            state = "up" if up else "down"
            raise TraceError(f"port {port} is already {state}")
        if up:
            self._port_up[port] = True
            self._n_down -= 1
            return 0
        self._port_up[port] = False
        self._n_down += 1
        flushed = [p for p in self._items if p.port == port]
        if flushed:
            # Order-preserving removal keeps the sort key intact.
            self._items = [p for p in self._items if p.port != port]
            self.metrics.record_flush(flushed)
        return len(flushed)

    # Variant hooks -----------------------------------------------------

    def _admit(self, packet: Packet) -> None:
        raise NotImplementedError

    def _transmit(self) -> List[Packet]:
        raise NotImplementedError


class SrptSurrogate(_SinglePQSurrogate):
    """Processing-model surrogate: smallest-residual-first single queue.

    The buffer list is sorted ascending by residual work. Decrementing a
    prefix of a sorted list keeps it sorted, so transmission is O(cores)
    and admission O(B).
    """

    def _admit(self, packet: Packet) -> None:
        admitted = packet.fresh_copy()
        if len(self._items) < self.buffer_size:
            insort(self._items, admitted, key=lambda p: p.residual)
            self.metrics.record_accept(admitted)
            return
        # Push out the largest-residual packet when the arrival is smaller.
        if self._items and self._items[-1].residual > admitted.residual:
            victim = self._items.pop()
            self.metrics.record_push_out(victim)
            insort(self._items, admitted, key=lambda p: p.residual)
            self.metrics.record_accept(admitted)
        else:
            self.metrics.record_drop(packet)

    def _transmit(self) -> List[Packet]:
        active = min(self.cores, len(self._items))
        for idx in range(active):
            self._items[idx].residual -= 1
        done: List[Packet] = []
        while self._items and self._items[0].residual == 0:
            done.append(self._items.pop(0))
        return done


class MaxValueSurrogate(_SinglePQSurrogate):
    """Value-model surrogate: largest-value-first single queue.

    The buffer list is sorted ascending by value; transmission pops from
    the tail (most valuable first), admission evicts from the head
    (least valuable) when profitable.
    """

    def _admit(self, packet: Packet) -> None:
        admitted = packet.fresh_copy()
        if len(self._items) < self.buffer_size:
            insort(self._items, admitted, key=lambda p: p.value)
            self.metrics.record_accept(admitted)
            return
        if self._items and self._items[0].value < admitted.value:
            victim = self._items.pop(0)
            self.metrics.record_push_out(victim)
            insort(self._items, admitted, key=lambda p: p.value)
            self.metrics.record_accept(admitted)
        else:
            self.metrics.record_drop(packet)

    def _transmit(self) -> List[Packet]:
        active = min(self.cores, len(self._items))
        done: List[Packet] = []
        for _ in range(active):
            packet = self._items.pop()
            packet.residual = 0
            done.append(packet)
        return done


def make_surrogate(
    config: SwitchConfig, by_value: bool, *, engine: str = "reference"
) -> System:
    """Build the appropriate surrogate for a model/objective.

    ``engine`` selects the implementation: ``"reference"`` is the
    ``bisect`` single queue above (the oracle); ``"vectorized"`` is the
    array-backed variant of :mod:`repro.opt.vectorized`, decision- and
    metrics-identical by contract (see docs/PIPELINE.md). Measured
    objectives are therefore engine-independent, which is why the
    engine is not part of any cache or journal identity.
    """
    if engine == "vectorized":
        from repro.opt.vectorized import (
            VectorizedMaxValueSurrogate,
            VectorizedSrptSurrogate,
        )

        if by_value:
            return VectorizedMaxValueSurrogate(config)
        return VectorizedSrptSurrogate(config)
    if engine != "reference":
        raise ConfigError(
            f"unknown surrogate engine {engine!r}; "
            "expected 'reference' or 'vectorized'"
        )
    if by_value:
        return MaxValueSurrogate(config)
    return SrptSurrogate(config)
