"""A *true* offline optimum for tiny instances, by memoized search.

The paper never computes the real OPT ("computationally prohibitive") and
validates against a single-PQ surrogate instead. For testing we can do
better on small instances: because OPT may be assumed non-push-out (a
pushed-out packet might as well never be admitted), the offline problem is
a search over accept/drop decisions, one per arriving packet, subject to
the shared-buffer constraint. This module solves it exactly with
depth-first search memoized on a canonical buffer state.

State canonicalization exploits the model structure:

* processing model — every packet in queue ``i`` requires ``w_i`` cycles
  and FIFO order holds, so a queue is fully described by its length and
  its head packet's residual work;
* value model — unit work, value order; a queue is a multiset of values,
  canonicalized as a sorted tuple (transmitted value per slot depends only
  on the multiset).

Complexity is exponential in the number of arrivals; instances with up to
roughly 20 arrivals and a handful of slots solve instantly, which is all
the test oracle needs. :func:`exhaustive_opt` refuses (raises
:class:`~repro.core.errors.ConfigError`) beyond a configurable budget
instead of silently hanging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.config import QueueDiscipline, SwitchConfig
from repro.core.errors import ConfigError

# A processing-model queue state: residuals in FIFO order (head first).
_ProcQueue = Tuple[int, ...]
# A value-model queue state: sorted tuple of buffered values.
_ValueQueue = Tuple[float, ...]


@dataclass(frozen=True)
class TinyInstance:
    """A small offline instance: per-slot arrival lists of (port, value).

    ``arrivals[t]`` lists the packets arriving in slot ``t`` in order; for
    the processing model the packet work is implied by the port (per-model
    constraint), for the value model each entry's value matters and work
    is 1.
    """

    config: SwitchConfig
    arrivals: Tuple[Tuple[Tuple[int, float], ...], ...]

    @property
    def total_arrivals(self) -> int:
        return sum(len(slot) for slot in self.arrivals)


def exhaustive_opt(
    instance: TinyInstance,
    by_value: bool | None = None,
    max_arrivals: int = 22,
    drain_slots: int | None = None,
) -> float:
    """The exact optimal offline objective for a tiny instance.

    Parameters
    ----------
    instance:
        The instance to solve.
    by_value:
        Objective: total transmitted value (true) or packet count (false).
        Defaults to the model implied by the switch discipline.
    max_arrivals:
        Safety budget; instances with more arrivals are rejected.
    drain_slots:
        Number of arrival-free slots appended so buffered packets can
        drain. Defaults to enough slots to empty a full buffer of
        maximal-work packets.
    """
    config = instance.config
    if by_value is None:
        by_value = config.discipline is QueueDiscipline.PRIORITY
    if instance.total_arrivals > max_arrivals:
        raise ConfigError(
            f"exhaustive OPT limited to {max_arrivals} arrivals, "
            f"instance has {instance.total_arrivals}"
        )
    if drain_slots is None:
        drain_slots = config.buffer_size * config.max_work + 1

    slots: List[Tuple[Tuple[int, float], ...]] = list(instance.arrivals)
    slots.extend([()] * drain_slots)

    if config.discipline is QueueDiscipline.FIFO:
        return _solve_processing(config, tuple(slots), by_value)
    return _solve_value(config, tuple(slots), by_value)


# ---------------------------------------------------------------------------
# Processing model
# ---------------------------------------------------------------------------


def _solve_processing(
    config: SwitchConfig,
    slots: Tuple[Tuple[Tuple[int, float], ...], ...],
    by_value: bool,
) -> float:
    works = config.works
    buffer_size = config.buffer_size
    cores = config.speedup
    memo: Dict[Tuple[int, int, Tuple[_ProcQueue, ...]], float] = {}

    def transmit(state: Tuple[_ProcQueue, ...]) -> Tuple[
        Tuple[_ProcQueue, ...], float
    ]:
        """Exactly mirrors FifoQueue.process: the first ``min(C, |Q|)``
        packets each receive a cycle and leading zeros transmit."""
        gained = 0.0
        new_state: List[_ProcQueue] = []
        for residuals in state:
            if not residuals:
                new_state.append(())
                continue
            active = min(cores, len(residuals))
            updated = tuple(r - 1 for r in residuals[:active]) + residuals[
                active:
            ]
            done = 0
            while done < len(updated) and updated[done] == 0:
                done += 1
            gained += done  # unit value in the processing model
            new_state.append(updated[done:])
        return tuple(new_state), gained

    def arrivals_of(slot: int) -> Tuple[Tuple[int, float], ...]:
        return slots[slot]

    def best(slot: int, arr_idx: int, state: Tuple[_ProcQueue, ...]) -> float:
        if slot == len(slots):
            return 0.0
        key = (slot, arr_idx, state)
        cached = memo.get(key)
        if cached is not None:
            return cached
        arrivals = arrivals_of(slot)
        if arr_idx == len(arrivals):
            next_state, gained = transmit(state)
            result = gained + best(slot + 1, 0, next_state)
        else:
            port, _value = arrivals[arr_idx]
            # Branch 1: drop.
            result = best(slot, arr_idx + 1, state)
            # Branch 2: accept, if the buffer has space.
            occupancy = sum(len(residuals) for residuals in state)
            if occupancy < buffer_size:
                new_queue = state[port] + (works[port],)
                new_state = state[:port] + (new_queue,) + state[port + 1 :]
                result = max(result, best(slot, arr_idx + 1, new_state))
        memo[key] = result
        return result

    empty: Tuple[_ProcQueue, ...] = tuple(() for _ in range(config.n_ports))
    return best(0, 0, empty)


# ---------------------------------------------------------------------------
# Value model
# ---------------------------------------------------------------------------


def _solve_value(
    config: SwitchConfig,
    slots: Tuple[Tuple[Tuple[int, float], ...], ...],
    by_value: bool,
) -> float:
    buffer_size = config.buffer_size
    cores = config.speedup
    memo: Dict[Tuple[int, int, Tuple[_ValueQueue, ...]], float] = {}

    def transmit(state: Tuple[_ValueQueue, ...]) -> Tuple[
        Tuple[_ValueQueue, ...], float
    ]:
        gained = 0.0
        new_state: List[_ValueQueue] = []
        for values in state:
            if not values:
                new_state.append(())
                continue
            sent = min(cores, len(values))
            # Queues transmit their most valuable packets; which packets
            # transmit matters only through the objective.
            gained += sum(values[-sent:]) if by_value else sent
            new_state.append(values[:-sent])
        return tuple(new_state), gained

    def best(slot: int, arr_idx: int, state: Tuple[_ValueQueue, ...]) -> float:
        if slot == len(slots):
            return 0.0
        key = (slot, arr_idx, state)
        cached = memo.get(key)
        if cached is not None:
            return cached
        arrivals = slots[slot]
        if arr_idx == len(arrivals):
            next_state, gained = transmit(state)
            result = gained + best(slot + 1, 0, next_state)
        else:
            port, value = arrivals[arr_idx]
            result = best(slot, arr_idx + 1, state)
            occupancy = sum(len(q) for q in state)
            if occupancy < buffer_size:
                queue = state[port]
                new_queue = tuple(sorted(queue + (value,)))
                new_state = state[:port] + (new_queue,) + state[port + 1 :]
                result = max(result, best(slot, arr_idx + 1, new_state))
        memo[key] = result
        return result

    empty = tuple(() for _ in range(config.n_ports))
    return best(0, 0, empty)
