"""The farm executor: SupervisedExecutor with a farm round up front.

:class:`FarmExecutor` is the farm's hook into
:func:`repro.analysis.sweep.run_sweep` — it subclasses
:class:`~repro.resilience.supervisor.SupervisedExecutor` and overrides
the ``_execute`` seam: cells first go to the socket farm, and whatever
the farm cannot finish (no workers joined, reissue budgets exhausted,
backoffs pending at farm teardown) falls through to the inherited
pool → serial chain. Completion and failure bookkeeping are *shared*
with the local paths (``_complete`` / ``_record_failure``), so
validation, cache/journal flushing, retry charging, quarantine, and
injected interrupts behave identically wherever a cell runs — which is
what keeps farm output byte-identical to serial output.
"""

from __future__ import annotations

import subprocess
from typing import Any, Dict, List, Mapping, Optional

from repro.farm.coordinator import FarmCoordinator, FarmOptions
from repro.farm.jobs import FarmJob
from repro.farm.ledger import FarmStats
from repro.farm.worker import reap_workers, spawn_local_workers
from repro.resilience.supervisor import (
    CellFailure,
    CellTask,
    SupervisedExecutor,
)


class FarmExecutor(SupervisedExecutor):
    """Supervised execution with a distributed farm as the first tier.

    Accepts everything :class:`SupervisedExecutor` does, plus the farm
    job (the declarative cell-context recipe workers rebuild from),
    the farm options, the farm ledger, and the sweep identity (handed
    to workers so their per-worker journals merge with the
    coordinator's).
    """

    def __init__(
        self,
        *args: Any,
        farm_options: FarmOptions,
        farm_job: FarmJob,
        farm_stats: Optional[FarmStats] = None,
        sweep_identity: Optional[Mapping[str, Any]] = None,
        experiment: str = "",
        **kwargs: Any,
    ) -> None:
        super().__init__(*args, **kwargs)
        self._farm_options = farm_options
        self._farm_job = farm_job
        self.farm_stats = (
            farm_stats if farm_stats is not None else FarmStats()
        )
        self._sweep_identity = sweep_identity
        self._experiment = experiment

    def _execute(
        self,
        queue: List[CellTask],
        results: Dict[Any, Any],
        failures: List[CellFailure],
    ) -> None:
        if queue:
            leftover = self._farm_round(queue, results, failures)
            queue[:] = leftover
        if queue:
            self.farm_stats.fallback_cells += len(queue)
            super()._execute(queue, results, failures)

    def _farm_round(
        self,
        queue: List[CellTask],
        results: Dict[Any, Any],
        failures: List[CellFailure],
    ) -> List[CellTask]:
        options = self._farm_options
        coordinator = FarmCoordinator(
            self._farm_job,
            identity=self._sweep_identity,
            options=options,
            stats=self.farm_stats,
            experiment=self._experiment,
        )
        procs: List[subprocess.Popen] = []
        try:
            host, port = coordinator.endpoint
            if options.workers > 0:
                fault_spec = (
                    self._injector.spec
                    if self._injector is not None
                    else None
                )
                procs = spawn_local_workers(
                    host,
                    port,
                    options.workers,
                    fault_spec=fault_spec,
                    journal_dir=options.worker_journal_dir,
                )
            tasks = list(queue)
            queue.clear()
            return coordinator.run(tasks, self, results, failures)
        finally:
            coordinator.close()
            reap_workers(procs)
