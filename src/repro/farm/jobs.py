"""Farm job specs: how a worker rebuilds a sweep's cell context.

The local pool path ships unpicklable closures to workers by fork
inheritance; a socket worker on another host has no shared memory
image, so a farm job is the *declarative* replacement: a JSON-
serializable ``(kind, spec)`` pair that names a registered builder
plus everything it needs to reconstruct the exact cell function —
``FarmJob("fig5", {"panel": 4, "n_slots": ..., ...})`` rebuilds the
same factories :func:`repro.experiments.fig5.run_panel` uses, so a
farmed cell is bit-for-bit the cell the serial path would compute.

When the spec carries a ``cache_dir``, the worker resolves each leased
policy against the shared content-addressed
:class:`~repro.analysis.cache.SweepCache` before computing (and stores
fresh measurements after) — the cache is the farm's shared artifact
store, checksummed on read at both ends.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro.core.errors import FarmError
from repro.resilience.faults import FaultInjector

#: Job wire-format version; bumped on incompatible changes.
JOB_SCHEMA_VERSION = 1

#: ``runner(index, attempt, value, seed, policies) -> (points, stages)``
CellRunner = Callable[
    [int, int, float, int, Tuple[str, ...]],
    Tuple[List[Any], Dict[str, float]],
]

#: ``builder(spec, injector, allow_exit) -> CellRunner``
JobBuilder = Callable[
    [Mapping[str, Any], Optional[FaultInjector], bool], CellRunner
]

_BUILDERS: Dict[str, JobBuilder] = {}


@dataclass(frozen=True)
class FarmJob:
    """A JSON-serializable recipe for rebuilding cell execution."""

    kind: str
    spec: Mapping[str, Any]

    def to_wire(self) -> Dict[str, Any]:
        return {
            "schema": JOB_SCHEMA_VERSION,
            "kind": self.kind,
            "spec": dict(self.spec),
        }


def register_job_kind(kind: str) -> Callable[[JobBuilder], JobBuilder]:
    """Register a builder for a job kind (decorator)."""

    def decorate(builder: JobBuilder) -> JobBuilder:
        _BUILDERS[kind] = builder
        return builder

    return decorate


def build_cell_runner(
    job: Mapping[str, Any],
    *,
    injector: Optional[FaultInjector] = None,
    allow_exit: bool = True,
) -> CellRunner:
    """Resolve a wire-format job into its cell runner.

    ``injector`` is the *worker's* fault injector: crash/die/hang/
    corrupt faults fire inside the rebuilt cell exactly as they do in
    pool workers. ``allow_exit=False`` (in-process test workers)
    downgrades ``die`` so an injected death cannot kill the host
    process.
    """
    schema = job.get("schema")
    if schema != JOB_SCHEMA_VERSION:
        raise FarmError(
            f"farm job has schema {schema!r}; this worker speaks "
            f"{JOB_SCHEMA_VERSION}"
        )
    kind = job.get("kind")
    builder = _BUILDERS.get(str(kind))
    if builder is None:
        raise FarmError(
            f"unknown farm job kind {kind!r}; known: "
            + ", ".join(sorted(_BUILDERS))
        )
    spec = job.get("spec")
    if not isinstance(spec, Mapping):
        raise FarmError(f"farm job spec is not an object: {spec!r}")
    return builder(spec, injector, allow_exit)


@register_job_kind("fig5")
def _build_fig5_runner(
    spec: Mapping[str, Any],
    injector: Optional[FaultInjector],
    allow_exit: bool,
) -> CellRunner:
    """Rebuild a Fig. 5 panel cell, mirroring ``run_panel`` exactly."""
    from repro.analysis.cache import SweepCache
    from repro.analysis.sweep import (
        _CellContext,
        _execute_cell,
        _point_from_payload,
        _point_to_payload,
    )
    from repro.experiments.fig5 import (
        PANELS,
        _panel_factories,
        panel_cache_token,
    )

    try:
        panel = int(spec["panel"])
        n_slots = int(spec["n_slots"])
        load = float(spec["load"])
        flush_every = (
            int(spec["flush_every"])
            if spec.get("flush_every") is not None
            else None
        )
        engine = str(spec.get("engine") or "reference")
        trace_backend = str(spec.get("trace_backend") or "object")
        cache_dir = spec.get("cache_dir")
    except (KeyError, TypeError, ValueError) as exc:
        raise FarmError(f"malformed fig5 farm job spec: {exc}") from exc
    panel_spec = PANELS.get(panel)
    if panel_spec is None:
        raise FarmError(f"fig5 farm job names unknown panel {panel}")
    config_factory, trace_factory, _trace_key = _panel_factories(
        panel_spec, n_slots, load, columnar=trace_backend == "columnar"
    )
    by_value = panel_spec.model != "processing"
    ctx = _CellContext(
        config_factory=config_factory,
        trace_factory=trace_factory,
        by_value=by_value,
        flush_every=flush_every,
        drain=False,
        injector=injector,
        engine=engine,
    )
    cache = SweepCache(cache_dir) if cache_dir else None
    token = (
        panel_cache_token(panel_spec, n_slots, load)
        if cache is not None
        else None
    )

    def run(
        index: int,
        attempt: int,
        value: float,
        seed: int,
        policies: Tuple[str, ...],
    ) -> Tuple[List[Any], Dict[str, float]]:
        cached: Dict[str, Any] = {}
        keys: Dict[str, str] = {}
        if cache is not None:
            config = config_factory(value)
            for policy in policies:
                key = cache.key(
                    config=config,
                    workload=token,
                    policy=policy,
                    param_value=value,
                    seed=seed,
                    by_value=by_value,
                    flush_every=flush_every,
                    drain=False,
                )
                keys[policy] = key
                payload = cache.get(key)
                if payload is not None:
                    cached[policy] = _point_from_payload(
                        payload, value, seed, policy
                    )
        missing = tuple(p for p in policies if p not in cached)
        stages: Dict[str, float] = {}
        fresh: Dict[str, Any] = {}
        if missing:
            points, stages = _execute_cell(
                ctx,
                value,
                seed,
                missing,
                cell_index=index,
                attempt=attempt,
                in_worker=allow_exit,
            )
            fresh = {point.policy: point for point in points}
            if cache is not None:
                for policy, point in fresh.items():
                    # Never store a non-finite measurement (e.g. the
                    # ``corrupt`` fault's NaN): the coordinator rejects
                    # the result and retries, and the retry must find a
                    # clean cache, not a poisoned one.
                    if policy in keys and all(
                        math.isfinite(getattr(point, name))
                        for name in (
                            "ratio",
                            "alg_objective",
                            "opt_objective",
                        )
                    ):
                        cache.put(keys[policy], _point_to_payload(point))
        # Reassemble in lease order so the coordinator-side shape
        # validation (points == plan.missing, in order) holds whether a
        # policy came from the shared cache or a fresh simulation.
        merged = []
        for policy in policies:
            point = fresh.get(policy) or cached.get(policy)
            if point is not None:
                merged.append(point)
        return merged, stages

    return run
