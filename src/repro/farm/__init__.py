"""Fault-tolerant distributed sweep farm.

Paper-scale sweeps are embarrassingly parallel over (value, seed)
cells; this package grows the single-host supervised executor into a
multi-host farm with the *same byte-identity contract*: a sweep that
absorbs worker crashes, hangs, disconnects, and partitions produces
output byte-identical to a clean serial run. See ``docs/FARM.md`` for
the operator's view and the failure matrix.

* :mod:`repro.farm.protocol` — the JSONL-over-TCP wire grammar and the
  deterministic result digest;
* :mod:`repro.farm.jobs` — declarative job specs workers use to
  rebuild the exact cell function (:class:`FarmJob`);
* :mod:`repro.farm.coordinator` — lease issue/expiry/reissue,
  heartbeat tracking, duplicate-digest verification
  (:class:`FarmCoordinator`, :class:`FarmOptions`);
* :mod:`repro.farm.worker` — the socket worker and local fleet
  spawning (:class:`FarmWorker`, :func:`spawn_local_workers`);
* :mod:`repro.farm.executor` — the :class:`FarmExecutor` that plugs
  the farm into ``run_sweep`` ahead of the pool → serial chain;
* :mod:`repro.farm.ledger` — the :class:`FarmStats` counters surfaced
  through SweepStats, the report table, and ``repro farm status``;
* :mod:`repro.farm.merge` — canonical journal merging with duplicate
  equality checks (:func:`merge_run_journals`).
"""

from repro.farm.coordinator import FarmCoordinator, FarmOptions
from repro.farm.executor import FarmExecutor
from repro.farm.jobs import FarmJob, build_cell_runner, register_job_kind
from repro.farm.ledger import FarmStats
from repro.farm.merge import merge_run_journals
from repro.farm.worker import (
    FarmWorker,
    reap_workers,
    spawn_local_workers,
)

__all__ = [
    "FarmCoordinator",
    "FarmExecutor",
    "FarmJob",
    "FarmOptions",
    "FarmStats",
    "FarmWorker",
    "build_cell_runner",
    "merge_run_journals",
    "reap_workers",
    "register_job_kind",
    "spawn_local_workers",
]
