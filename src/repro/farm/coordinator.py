"""The farm coordinator: lease cells out, heartbeat workers, merge back.

The coordinator owns a listening socket. Workers register (``hello``),
receive the job spec (``welcome``), and are then driven one lease at a
time. Supervision is built from three independent clocks:

* **heartbeats** — a worker silent for ``heartbeat_timeout`` seconds is
  declared lost; its active lease is reissued. Loss is not final: a
  partitioned worker that resumes talking is revived in place.
* **lease TTLs** — a lease unfinished after ``lease_ttl`` seconds is
  expired and reissued *even if its worker heartbeats happily*:
  liveness is never accepted as proof of progress (the
  ``stale-heartbeat`` fault exists to pin exactly this).
* **reissue budget** — each cell tolerates ``max_reissues``
  replacement leases; beyond that the farm stops gambling and hands
  the cell down to the local pool/serial fallback chain.

Determinism is enforced at the result boundary. Every result carries a
sha256 digest over its deterministic projection (points, never stage
timings); the coordinator recomputes it on receipt (transport
integrity) and — the important half — compares it across *duplicate*
deliveries of the same cell, which reissued leases produce by design.
Divergent duplicates mean two workers computed different bytes for the
same ``(value, seed)``: the sweep fails loudly with
:class:`~repro.core.errors.FarmError` instead of picking a winner.

Results are delivered to the supervised executor's ``_complete`` hook
in arrival order — validation, cache/journal flush, and progress all
reuse the exact local-path machinery — and the sweep reassembles in
canonical order afterwards, so farm scheduling can never leak into
output bytes.
"""

from __future__ import annotations

import heapq
import queue as queue_mod
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro.core.concurrency import consumes, event_loop
from repro.core.errors import FarmError
from repro.farm import protocol
from repro.farm.jobs import FarmJob
from repro.farm.ledger import FarmStats
from repro.resilience.supervisor import CellTask, _CorruptResult


@dataclass
class FarmOptions:
    """Knobs of the farm (CLI: ``repro run --farm`` / ``repro farm``)."""

    #: Local worker subprocesses to spawn (0 = rely on externally
    #: attached workers only).
    workers: int = 2
    #: Listen address. Port 0 binds an ephemeral port (tests); a fixed
    #: port lets external workers attach (``repro farm serve``).
    host: str = "127.0.0.1"
    port: int = 0
    #: Per-lease completion deadline, seconds. Catches workers that are
    #: alive but not progressing (stale heartbeats, stuck cells).
    lease_ttl: float = 30.0
    #: Worker heartbeat cadence and the silence that declares it lost.
    heartbeat_interval: float = 0.5
    heartbeat_timeout: float = 5.0
    #: Replacement leases tolerated per cell before handing it to the
    #: local fallback chain.
    max_reissues: int = 4
    #: How long to run a farm with zero live workers before falling
    #: back locally (covers both slow spawns and a dead fleet).
    join_grace: float = 10.0
    #: Event-loop poll granularity, seconds.
    poll_interval: float = 0.05
    #: Called once with (host, port) after the socket binds — the CLI
    #: uses it to announce the endpoint for external workers.
    announce: Optional[Callable[[str, int], None]] = None
    #: When set, spawned local workers each keep a per-worker
    #: :class:`~repro.resilience.journal.RunJournal` in this directory
    #: (``repro farm merge`` folds them into one canonical journal).
    worker_journal_dir: Optional[str] = None


@dataclass
class _Lease:
    lease_id: int
    task: CellTask
    worker: str
    deadline: float
    active: bool = True  # False once expired/orphaned (late result ok)


@dataclass
class _Worker:
    name: str
    stream: protocol.MessageStream
    conn_id: int
    live: bool = True
    last_beat: float = field(default_factory=time.monotonic)
    lease_id: Optional[int] = None  # the active lease, if any


class FarmCoordinator:
    """Drives one sweep's cells through socket-registered workers.

    Construct, (optionally) read :attr:`endpoint` to spawn/attach
    workers, call :meth:`run` with the executor whose ``_complete`` /
    ``_record_failure`` bookkeeping it should reuse, then
    :meth:`close`. ``run`` returns the tasks the farm could not finish
    — the executor hands them down the pool/serial chain.

    Thread shape (checked by ``repro check``'s RC5xx rules): one accept
    thread, one reader thread per connection, and the strictly
    single-threaded ``@event_loop`` in :meth:`run`. The lock ownership
    declared below is the whole cross-thread contract — everything
    else is either event-queue traffic or pre-thread ``__init__``
    state.
    """

    # repro: guarded-by[_streams]=_streams_lock
    # repro: guarded-by[_reader_threads]=_streams_lock
    # repro: guarded-by[_status]=_status_lock

    def __init__(
        self,
        job: FarmJob,
        *,
        identity: Optional[Mapping[str, Any]],
        options: FarmOptions,
        stats: FarmStats,
        experiment: str = "",
    ) -> None:
        self._job = job
        self._identity = dict(identity) if identity is not None else None
        self._options = options
        self.stats = stats
        self._experiment = experiment
        self._events: "queue_mod.Queue[Tuple[str, Any, Any]]" = (
            queue_mod.Queue()
        )
        self._closing = False
        self._conn_seq = 0
        self._streams: List[protocol.MessageStream] = []
        self._reader_threads: List[threading.Thread] = []
        self._streams_lock = threading.Lock()
        self._status_lock = threading.Lock()
        self._status: Dict[str, Any] = {
            "experiment": experiment,
            "state": "starting",
        }
        self._server = socket.create_server(
            (options.host, options.port)
        )
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True
        )
        self._accept_thread.start()
        if options.announce is not None:
            options.announce(*self.endpoint)

    @property
    def endpoint(self) -> Tuple[str, int]:
        host, port = self._server.getsockname()[:2]
        return str(host), int(port)

    # ------------------------------------------------------------------
    # Socket plumbing (daemon threads; hand everything to the event
    # queue — the orchestration loop below is strictly single-threaded)
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                conn, _addr = self._server.accept()
            except OSError:
                return  # server socket closed
            self._conn_seq += 1
            stream = protocol.MessageStream(conn)
            reader = threading.Thread(
                target=self._reader_loop,
                args=(stream, self._conn_seq),
                daemon=True,
            )
            with self._streams_lock:
                self._streams.append(stream)
                self._reader_threads.append(reader)
            reader.start()

    def _reader_loop(
        self, stream: protocol.MessageStream, conn_id: int
    ) -> None:
        name: Optional[str] = None
        try:
            while True:
                message = stream.recv()
                if message is None:
                    break
                kind = message.get("t")
                if kind == "status?":
                    with self._status_lock:
                        snapshot = dict(self._status)
                    snapshot["t"] = "status"
                    stream.send(snapshot)
                    continue
                if name is None:
                    if kind != "hello":
                        break  # not a worker; drop the connection
                    name = str(message.get("name"))
                    if message.get("protocol") != protocol.PROTOCOL_VERSION:
                        break
                    self._events.put(
                        ("hello", (name, conn_id, stream), None)
                    )
                    continue
                self._events.put(("msg", (name, conn_id), message))
        except (OSError, FarmError):
            pass  # torn connection or garbage: treat as gone
        finally:
            if name is not None:
                self._events.put(("gone", (name, conn_id), None))
            stream.close()

    # ------------------------------------------------------------------
    # Orchestration
    # ------------------------------------------------------------------

    @event_loop
    def run(
        self,
        tasks: List[CellTask],
        executor,
        results: Dict[Any, Any],
        failures: List,
    ) -> List[CellTask]:
        """Lease ``tasks`` to workers until done, failed, or exhausted.

        ``executor`` supplies the shared bookkeeping: ``_complete``
        (validate → cache/journal flush → progress → injected
        interrupt) and ``_record_failure`` (attempt charging, retry
        backoff, quarantine). Returns the leftover tasks for the local
        fallback chain.
        """
        options = self._options
        started = time.monotonic()
        workers: Dict[str, _Worker] = {}
        leases: Dict[int, _Lease] = {}
        pending: List[CellTask] = list(tasks)
        retry_heap: List[Tuple[float, int, CellTask]] = []
        unfinished: Dict[Any, CellTask] = {t.key: t for t in tasks}
        done_digests: Dict[Any, str] = {}
        reissues: Dict[Any, int] = {}
        fallback: List[CellTask] = []
        lease_seq = 0
        ever_joined = False
        last_live = started

        def live_workers() -> List[_Worker]:
            return [w for w in workers.values() if w.live]

        def free_lease(lease: _Lease) -> None:
            worker = workers.get(lease.worker)
            if worker is not None and worker.lease_id == lease.lease_id:
                worker.lease_id = None
            lease.active = False

        def reissue(task: CellTask, *, why: str) -> None:
            """Replacement lease after loss/expiry (not a failure)."""
            if task.key not in unfinished:
                return
            count = reissues.get(task.key, 0) + 1
            reissues[task.key] = count
            if count > options.max_reissues:
                unfinished.pop(task.key, None)
                fallback.append(task)
                return
            task.attempt += 1
            self.stats.leases_reissued += 1
            pending.append(task)

        def expire_worker_lease(worker: _Worker, *, why: str) -> None:
            if worker.lease_id is None:
                return
            lease = leases.get(worker.lease_id)
            worker.lease_id = None
            if lease is None or not lease.active:
                return
            lease.active = False
            reissue(lease.task, why=why)

        def lose_worker(worker: _Worker, *, beat_timeout: bool) -> None:
            if not worker.live:
                return
            worker.live = False
            self.stats.workers_lost += 1
            if beat_timeout:
                self.stats.heartbeats_missed += 1
            expire_worker_lease(
                worker,
                why="heartbeat timeout" if beat_timeout else "connection lost",
            )

        def quarantine_check(task: CellTask) -> None:
            """After ``_record_failure``: drop quarantined tasks."""
            if task.attempt > executor.options.retries:
                unfinished.pop(task.key, None)

        @consumes("result")
        def handle_result(
            worker_name: str, message: Dict[str, Any]
        ) -> None:
            lease = leases.get(int(message.get("lease_id", -1)))
            key = (float(message["value"]), int(message["seed"]))
            wire_points = message.get("points") or []
            claimed = message.get("digest")
            computed = protocol.result_digest(wire_points)
            worker = workers.get(worker_name)
            if lease is not None:
                free_lease(lease)
            if computed != claimed:
                # Transport integrity failure; the cell itself is fine,
                # so charge nothing — reissue if still unfinished.
                self.stats.results_rejected += 1
                task = unfinished.get(key)
                if task is not None and (
                    lease is None or lease.task.key == key
                ):
                    reissue(task, why="transport digest mismatch")
                return
            if key in done_digests:
                # A duplicate delivery from a reissued/late lease: THE
                # determinism check. Same cell, same bytes — or the
                # whole sweep is untrustworthy.
                if computed != done_digests[key]:
                    raise FarmError(
                        f"determinism violation: cell {key} produced "
                        f"digest {computed[:12]} from worker "
                        f"{worker_name}, but an earlier delivery "
                        f"produced {done_digests[key][:12]}; duplicate "
                        f"results of one cell must be byte-identical"
                    )
                self.stats.duplicate_results += 1
                return
            task = unfinished.get(key)
            if task is None:
                return  # late result for a quarantined/fallback cell
            points = protocol.points_from_wire(wire_points)
            stages = {
                str(k): float(v)
                for k, v in (message.get("stages") or {}).items()
            }
            try:
                executor._complete(task, (points, stages), results)
            except _CorruptResult as exc:
                self.stats.results_rejected += 1
                executor._record_failure(task, exc, retry_heap, failures)
                quarantine_check(task)
                return
            done_digests[key] = computed
            unfinished.pop(key, None)
            self.stats.cells_farmed += 1
            if worker is not None:
                self.stats.add_worker_stages(worker_name, stages)

        @consumes("error")
        def handle_error(
            worker_name: str, message: Dict[str, Any]
        ) -> None:
            lease = leases.get(int(message.get("lease_id", -1)))
            if lease is not None:
                free_lease(lease)
            if lease is None or lease.task.key not in unfinished:
                return  # stale error for a finished/abandoned lease
            text = str(message.get("error", "unknown worker error"))
            if message.get("fatal"):
                raise FarmError(
                    f"worker {worker_name} hit a deterministic error "
                    f"in cell {lease.task.key}: {text}"
                )
            executor._record_failure(
                lease.task, RuntimeError(text), retry_heap, failures
            )
            quarantine_check(lease.task)

        def handle_event(event: Tuple[str, Any, Any]) -> None:
            nonlocal ever_joined
            kind, ref, message = event
            if kind == "hello":
                name, conn_id, stream = ref
                previous = workers.get(name)
                if previous is not None:
                    # A reconnect (disconnect fault / restarted worker):
                    # the old connection is dead even if its reader has
                    # not noticed yet.
                    if previous.live and previous.conn_id != conn_id:
                        lose_worker(previous, beat_timeout=False)
                    previous.stream.close()
                else:
                    self.stats.workers_joined += 1
                workers[name] = _Worker(
                    name=name, stream=stream, conn_id=conn_id
                )
                ever_joined = True
                try:
                    # repro: allow[RC502] -- small frame, beat-bounded
                    stream.send(
                        protocol.welcome(
                            self._job.to_wire(),
                            self._identity,
                            self._options.heartbeat_interval,
                        )
                    )
                except OSError:
                    lose_worker(workers[name], beat_timeout=False)
                return
            name, conn_id = ref
            worker = workers.get(name)
            if worker is None or worker.conn_id != conn_id:
                return  # stale event from a replaced connection
            if kind == "gone":
                lose_worker(worker, beat_timeout=False)
                return
            # Any live traffic revives a worker declared lost (a healed
            # partition): its silence cost it the lease, not its seat.
            worker.last_beat = time.monotonic()
            if not worker.live:
                worker.live = True
            mtype = message.get("t")
            if mtype == "result":
                handle_result(name, message)
            elif mtype == "error":
                handle_error(name, message)
            elif mtype == "heartbeat":
                pass  # liveness is the timestamp update above

        try:
            while unfinished:
                now = time.monotonic()
                while retry_heap and retry_heap[0][0] <= now:
                    pending.append(heapq.heappop(retry_heap)[2])
                try:
                    event = self._events.get(
                        timeout=options.poll_interval
                    )
                except queue_mod.Empty:
                    event = None
                if event is not None:
                    handle_event(event)
                    # Drain whatever else queued up behind it.
                    while True:
                        try:
                            handle_event(self._events.get_nowait())
                        except queue_mod.Empty:
                            break
                now = time.monotonic()
                # Clock 1: heartbeat silence.
                for worker in live_workers():
                    if (
                        now - worker.last_beat
                        > options.heartbeat_timeout
                    ):
                        lose_worker(worker, beat_timeout=True)
                # Clock 2: lease TTLs (worker may still be live).
                for lease in list(leases.values()):
                    if lease.active and lease.deadline < now:
                        self.stats.leases_expired += 1
                        free_lease(lease)
                        reissue(lease.task, why="lease expired")
                # Assign pending cells to idle live workers.
                idle = [
                    w for w in live_workers() if w.lease_id is None
                ]
                for worker in idle:
                    task = _pop_assignable(pending, unfinished)
                    if task is None:
                        break
                    lease_seq += 1
                    lease = _Lease(
                        lease_id=lease_seq,
                        task=task,
                        worker=worker.name,
                        deadline=now + options.lease_ttl,
                    )
                    leases[lease_seq] = lease
                    worker.lease_id = lease_seq
                    self.stats.leases_issued += 1
                    value, seed = task.key
                    try:
                        # repro: allow[RC502] -- small frame, beat-bounded
                        worker.stream.send(
                            protocol.lease(
                                lease_seq,
                                task.index,
                                task.attempt,
                                value,
                                seed,
                                task.args[2],
                            )
                        )
                    except OSError:
                        lose_worker(worker, beat_timeout=False)
                if live_workers():
                    last_live = time.monotonic()
                elif (
                    time.monotonic() - (last_live if ever_joined else started)
                    > options.join_grace
                ):
                    # Worker exhaustion: nobody is serving and nobody
                    # joined within the grace window — stop gambling
                    # and hand everything left to the local chain.
                    leftover = [
                        task
                        for task in unfinished.values()
                        if all(
                            lease.task.key != task.key or not lease.active
                            for lease in leases.values()
                        )
                    ]
                    for task in leftover:
                        unfinished.pop(task.key, None)
                        fallback.append(task)
                    break
                self._publish_status(
                    total=len(tasks),
                    done=len(done_digests),
                    workers=workers,
                    started=started,
                )
        finally:
            # Tasks still waiting on a backoff belong to the fallback
            # chain too — the local executor has its own retry clock.
            for _ready, _idx, task in retry_heap:
                if task.key in unfinished:
                    unfinished.pop(task.key, None)
                    fallback.append(task)
            self._publish_status(
                total=len(tasks),
                done=len(done_digests),
                workers=workers,
                started=started,
                state="draining",
            )
        return fallback

    @event_loop
    def _publish_status(
        self,
        *,
        total: int,
        done: int,
        workers: Dict[str, _Worker],
        started: float,
        state: str = "running",
    ) -> None:
        now = time.monotonic()
        snapshot = {
            "experiment": self._experiment,
            "state": state,
            "endpoint": "%s:%d" % self.endpoint,
            "cells": {"total": total, "done": done},
            "workers": [
                {
                    "name": w.name,
                    "live": w.live,
                    "beat_age": round(now - w.last_beat, 3),
                    "busy": w.lease_id is not None,
                }
                for w in workers.values()
            ],
            "ledger": self.stats.as_dict(),
            "worker_stages": {
                name: {k: round(v, 6) for k, v in stages.items()}
                for name, stages in self.stats.worker_stages.items()
            },
            "elapsed": round(now - started, 3),
        }
        with self._status_lock:
            self._status = snapshot

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut the farm down: tell workers to exit, close the socket,
        and join every thread this coordinator started (bounded — a
        wedged reader must not wedge teardown)."""
        # repro: allow[RC505] -- monotonic one-shot bool; GIL-atomic
        self._closing = True
        try:
            self._server.close()
        except OSError:  # pragma: no cover - already closed
            pass
        with self._streams_lock:
            streams = list(self._streams)
            self._streams.clear()
            readers = list(self._reader_threads)
            self._reader_threads.clear()
        goodbye = protocol.shutdown()
        for stream in streams:
            try:
                stream.send(goodbye)
            except OSError:
                pass  # connection already gone; EOF says the same thing
            stream.close()
        # Closing the server socket unblocks accept(); closing the
        # streams unblocks every reader's recv(). Bounded joins so a
        # half-dead peer cannot hold close() hostage.
        self._accept_thread.join(timeout=5.0)
        for reader in readers:
            reader.join(timeout=5.0)


def _pop_assignable(
    pending: List[CellTask], unfinished: Dict[Any, CellTask]
) -> Optional[CellTask]:
    """Next pending task that is still worth leasing."""
    while pending:
        task = pending.pop(0)
        if task.key in unfinished:
            return task
    return None
