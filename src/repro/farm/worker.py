"""The farm worker: connect, register, execute leases, heartbeat.

A worker is a plain TCP client (``repro farm work --connect HOST:PORT``
or spawned locally by the coordinator). It registers with ``hello``,
rebuilds the cell function from the ``welcome`` job spec
(:mod:`repro.farm.jobs`), then loops: receive a lease, compute the
cell, send the result. A daemon thread heartbeats on the same socket.

Fault semantics (all decided by the worker's *own* deterministic
injector, so a spawned fleet and the coordinator agree on the script):

* ``crash``/``die``/``hang``/``corrupt`` fire *inside* the cell via
  :func:`repro.analysis.sweep._execute_cell`, exactly as in pool
  workers — ``die`` really ``os._exit``\\ s a spawned worker (the
  coordinator sees the connection drop), but is downgraded to a raised
  fault for in-process workers.
* ``disconnect`` computes the cell, then drops the connection without
  sending and re-registers: the result is lost, the lease reissued.
* ``delay`` computes the cell but sits on the result for ``delay=``
  seconds: the lease expires, is reissued, and the late delivery must
  be digest-equal with the reissue's.
* ``dup`` sends the result twice.
* ``partition`` goes fully silent — heartbeats included — for
  ``delay=`` seconds before computing: the coordinator declares the
  worker lost and reissues; the worker then rejoins with a late
  result.
* ``stale-heartbeat`` keeps heartbeating but silently drops the lease:
  liveness without progress, which only the lease TTL can catch.

Every decision is a pure function of ``(mode, cell index, attempt)``,
so a reissued lease (attempt + 1) escapes an exhausted fault clause —
that is what lets a chaos farm converge to clean-run bytes.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.core.concurrency import consumes
from repro.core.errors import FarmError, ReproError
from repro.farm import protocol
from repro.farm.jobs import CellRunner, build_cell_runner
from repro.resilience.faults import FaultInjector
from repro.resilience.journal import RunJournal

#: Set to any value to let spawned workers inherit stdout/stderr
#: (debugging); by default their output is discarded.
WORKER_LOG_ENV = "REPRO_FARM_WORKER_LOG"


class _Reconnect(Exception):
    """Internal: drop the connection and re-register (disconnect fault)."""


def _is_fatal(exc: BaseException) -> bool:
    """Deterministic cell errors: retrying on another worker cannot help."""
    return isinstance(exc, (ReproError, AssertionError, TypeError))


class FarmWorker:
    """One socket-registered sweep worker.

    Parameters
    ----------
    host / port:
        The coordinator endpoint.
    name:
        Registration name; defaults to ``worker-<pid>``. Reconnects
        reuse the name, which is how the coordinator recognizes a
        partitioned worker rejoining.
    injector:
        Deterministic fault source (``--inject-faults`` /
        ``REPRO_FAULTS``). ``None`` runs clean.
    journal_path:
        Optional per-worker :class:`RunJournal`; every computed cell is
        recorded under the sweep identity from ``welcome``, so worker
        journals merge with the coordinator's via ``repro farm merge``.
    in_process:
        True when the worker runs inside another repro process (tests):
        downgrades ``die`` so an injected death cannot kill the host.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        name: Optional[str] = None,
        injector: Optional[FaultInjector] = None,
        journal_path: Optional[Path | str] = None,
        in_process: bool = False,
        connect_timeout: float = 10.0,
    ) -> None:
        self._host = host
        self._port = int(port)
        self.name = name or f"worker-{os.getpid()}"
        self._injector = injector
        self._journal_path = journal_path
        self._journal: Optional[RunJournal] = None
        self._in_process = in_process
        self._connect_timeout = connect_timeout
        self._runner: Optional[CellRunner] = None
        self._mute_until = 0.0
        self.cells = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def run(self) -> int:
        """Serve leases until the coordinator shuts us down (or goes
        away); returns the number of cells computed."""
        try:
            while True:
                try:
                    self._session()
                except _Reconnect:
                    continue
                except OSError:
                    # Coordinator gone mid-session; nothing to serve.
                    break
                break
        finally:
            if self._journal is not None:
                self._journal.close()
                self._journal = None
        return self.cells

    def _session(self) -> None:
        sock = socket.create_connection(
            (self._host, self._port), timeout=self._connect_timeout
        )
        sock.settimeout(None)
        stream = protocol.MessageStream(sock)
        stop_heartbeat = threading.Event()
        beat: Optional[threading.Thread] = None
        try:
            stream.send(protocol.hello(self.name, os.getpid()))
            welcome = stream.recv(timeout=self._connect_timeout)
            if welcome is None or welcome.get("t") != "welcome":
                raise FarmError(
                    f"coordinator did not welcome worker {self.name}: "
                    f"{welcome!r}"
                )
            if welcome.get("protocol") != protocol.PROTOCOL_VERSION:
                raise FarmError(
                    f"coordinator speaks protocol "
                    f"{welcome.get('protocol')!r}, worker speaks "
                    f"{protocol.PROTOCOL_VERSION}"
                )
            if self._runner is None:
                self._runner = build_cell_runner(
                    welcome["job"],
                    injector=self._injector,
                    allow_exit=not self._in_process,
                )
            identity = welcome.get("identity")
            if self._journal_path is not None and identity is not None:
                if self._journal is None:
                    self._journal = RunJournal(self._journal_path)
                    self._journal.open(identity)
            interval = float(welcome.get("heartbeat_interval", 0.5))
            beat = threading.Thread(
                target=self._heartbeat_loop,
                args=(stream, interval, stop_heartbeat),
                daemon=True,
            )
            beat.start()
            while True:
                message = stream.recv()
                if message is None or message.get("t") == "shutdown":
                    return
                if message.get("t") == "lease":
                    self._handle_lease(stream, message)
        finally:
            # Stop the heartbeat before tearing the socket down so the
            # beat thread cannot race a send against close(); the join
            # is bounded — it only waits out an in-flight sendall.
            stop_heartbeat.set()
            if beat is not None:
                beat.join(timeout=2.0)
            stream.close()

    def _heartbeat_loop(
        self,
        stream: protocol.MessageStream,
        interval: float,
        stop: threading.Event,
    ) -> None:
        beat = protocol.heartbeat(self.name)
        while not stop.wait(interval):
            if time.monotonic() < self._mute_until:
                continue  # partitioned: silence, but keep ticking
            try:
                stream.send(beat)
            except OSError:
                return  # session is tearing down

    # ------------------------------------------------------------------
    # Lease execution
    # ------------------------------------------------------------------

    def _fires(self, mode: str, index: int, attempt: int) -> bool:
        return self._injector is not None and self._injector.should(
            mode, index, attempt
        )

    @consumes("lease")
    def _handle_lease(
        self, stream: protocol.MessageStream, message: Dict[str, Any]
    ) -> None:
        assert self._runner is not None
        lease_id = int(message["lease_id"])
        index = int(message["index"])
        attempt = int(message["attempt"])
        value = float(message["value"])
        seed = int(message["seed"])
        policies = tuple(str(p) for p in message["policies"])
        delay = self._injector.delay if self._injector is not None else 0.0

        if self._fires("stale-heartbeat", index, attempt):
            # Liveness without progress: the lease is silently dropped
            # while heartbeats keep flowing. Only the coordinator's
            # lease TTL can catch this.
            return
        if self._fires("partition", index, attempt):
            # Full silence — heartbeats muted — long enough for the
            # coordinator to declare us lost and reissue; then compute
            # and deliver late, rejoining.
            # repro: allow[RC505] -- single writer; float store is atomic
            self._mute_until = time.monotonic() + delay
            time.sleep(delay)

        try:
            points, stages = self._runner(
                index, attempt, value, seed, policies
            )
        except Exception as exc:
            stream.send(
                protocol.error(
                    lease_id,
                    index,
                    attempt,
                    f"{type(exc).__name__}: {exc}",
                    fatal=_is_fatal(exc),
                )
            )
            return

        if self._journal is not None:
            from repro.analysis.sweep import _point_to_payload

            self._journal.record(
                value,
                seed,
                {p.policy: _point_to_payload(p) for p in points},
                stages,
            )
        self.cells += 1

        if self._fires("delay", index, attempt):
            time.sleep(delay)
        if self._fires("disconnect", index, attempt):
            raise _Reconnect
        reply = protocol.result(
            lease_id,
            index,
            attempt,
            value,
            seed,
            protocol.points_to_wire(points),
            stages,
        )
        stream.send(reply)
        if self._fires("dup", index, attempt):
            stream.send(reply)


# ----------------------------------------------------------------------
# Local spawning (the coordinator's default fleet; also used by CI)
# ----------------------------------------------------------------------


def spawn_local_workers(
    host: str,
    port: int,
    count: int,
    *,
    fault_spec: Optional[str] = None,
    journal_dir: Optional[Path | str] = None,
    name_prefix: str = "local",
) -> List[subprocess.Popen]:
    """Spawn ``count`` worker subprocesses pointed at a coordinator.

    Workers inherit this interpreter and a ``PYTHONPATH`` that resolves
    this exact :mod:`repro` checkout, so a farm run never mixes library
    versions. ``fault_spec`` hands workers the same deterministic chaos
    script the coordinator runs (``--inject-faults``).
    """
    import repro

    src_root = Path(repro.__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(src_root) + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else str(src_root)
    )
    quiet = not env.get(WORKER_LOG_ENV)
    procs: List[subprocess.Popen] = []
    for i in range(count):
        argv = [
            sys.executable,
            "-m",
            "repro",
            "farm",
            "work",
            "--connect",
            f"{host}:{port}",
            "--name",
            f"{name_prefix}-{i}",
        ]
        if fault_spec:
            argv += ["--inject-faults", fault_spec]
        if journal_dir is not None:
            argv += [
                "--journal",
                str(Path(journal_dir) / f"{name_prefix}-{i}.journal"),
            ]
        procs.append(
            subprocess.Popen(
                argv,
                env=env,
                stdout=subprocess.DEVNULL if quiet else None,
                stderr=subprocess.DEVNULL if quiet else None,
            )
        )
    return procs


def reap_workers(
    procs: List[subprocess.Popen], *, grace: float = 5.0
) -> None:
    """Terminate and join spawned workers (idempotent, best-effort)."""
    for proc in procs:
        if proc.poll() is None:
            try:
                proc.terminate()
            except OSError:  # pragma: no cover - already gone
                pass
    deadline = time.monotonic() + grace
    for proc in procs:
        remaining = max(0.0, deadline - time.monotonic())
        try:
            proc.wait(timeout=remaining)
        except subprocess.TimeoutExpired:  # pragma: no cover - stuck
            proc.kill()
            proc.wait(timeout=grace)
