"""The farm ledger: counters of everything the coordinator absorbed.

The farm analogue of
:class:`~repro.resilience.supervisor.ResilienceStats` — one integer per
recovery mechanism, all zero on a clean run, carried on
:class:`~repro.analysis.sweep.SweepStats` and folded into the sweep's
counter registry under ``farm.*`` names. ``repro farm status`` serves
the same counters live, and the report table totals them per panel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

#: Counter fields, in display order. Kept explicit (rather than
#: ``dataclasses.fields``) because the ledger also carries the
#: non-counter per-worker stage map.
_COUNTERS = (
    "workers_joined",
    "workers_lost",
    "leases_issued",
    "leases_reissued",
    "leases_expired",
    "heartbeats_missed",
    "results_rejected",
    "duplicate_results",
    "cells_farmed",
    "fallback_cells",
)


@dataclass
class FarmStats:
    """What the farm did and what it had to absorb.

    ``leases_reissued`` counts replacement leases after loss or expiry;
    ``leases_expired`` counts leases that blew their TTL while their
    worker kept heartbeating (the stale-heartbeat case — liveness is
    not progress); ``heartbeats_missed`` counts workers declared lost
    for heartbeat silence; ``results_rejected`` counts payloads that
    failed validation or transport-digest checks; ``duplicate_results``
    counts redundant deliveries that passed the digest-equality
    determinism check; ``fallback_cells`` counts cells handed down to
    the local pool/serial chain when the farm could not finish them.
    """

    workers_joined: int = 0
    workers_lost: int = 0
    leases_issued: int = 0
    leases_reissued: int = 0
    leases_expired: int = 0
    heartbeats_missed: int = 0
    results_rejected: int = 0
    duplicate_results: int = 0
    cells_farmed: int = 0
    fallback_cells: int = 0
    #: Per-worker accumulated stage seconds (``trace_gen`` etc.), keyed
    #: by worker name — observability only, never part of any digest.
    worker_stages: Dict[str, Dict[str, float]] = field(
        default_factory=dict
    )

    def any(self) -> bool:
        return any(getattr(self, name) for name in _COUNTERS)

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in _COUNTERS}

    def add_worker_stages(
        self, worker: str, stages: Dict[str, float]
    ) -> None:
        into = self.worker_stages.setdefault(worker, {})
        for stage, seconds in stages.items():
            into[stage] = into.get(stage, 0.0) + float(seconds)

    def merge_into(self, registry) -> None:
        """Fold nonzero counters into a CounterRegistry as
        ``farm.<name>``."""
        for name, amount in self.as_dict().items():
            if amount:
                registry.incr(f"farm.{name}", amount)

    def merge_from(self, other: "FarmStats") -> None:
        """Accumulate another ledger (the report totals panels)."""
        for name in _COUNTERS:
            setattr(
                self, name, getattr(self, name) + getattr(other, name)
            )
        for worker, stages in other.worker_stages.items():
            self.add_worker_stages(worker, stages)

    def summary(self) -> str:
        """Compact one-liner, e.g. ``2 workers, 9 leases, 1 reissued``."""
        parts = []
        for name, label in (
            ("workers_joined", "workers"),
            ("workers_lost", "lost"),
            ("cells_farmed", "cells farmed"),
            ("leases_issued", "leases"),
            ("leases_reissued", "reissued"),
            ("leases_expired", "expired"),
            ("heartbeats_missed", "heartbeats missed"),
            ("results_rejected", "rejected"),
            ("duplicate_results", "duplicates verified"),
            ("fallback_cells", "fell back"),
        ):
            amount = getattr(self, name)
            if amount:
                parts.append(f"{amount} {label}")
        return ", ".join(parts) if parts else "idle"
