"""Wire protocol of the sweep farm: length-unframed JSONL over TCP.

One JSON object per ``\\n``-terminated line, UTF-8, in both directions.
The grammar is deliberately tiny — six message types — because every
hard guarantee (digest-equal duplicates, bounded reissue, canonical
merge order) lives in the coordinator, not the wire:

======================  =======  ========================================
type                    sender   meaning
======================  =======  ========================================
``hello``               worker   register: name, pid, protocol version
``welcome``             coord    job spec + sweep identity + heartbeat
                                 interval (the worker's marching orders)
``lease``               coord    one cell: lease id, index, attempt,
                                 value, seed, policy order
``heartbeat``           worker   liveness only — never progress proof
``result``              worker   completed cell: points + stages + digest
``error``               worker   the cell raised; ``fatal`` marks
                                 deterministic errors (fail the sweep)
``shutdown``            coord    drain and exit
``status?``/``status``  client   one-shot status snapshot (also JSON)
======================  =======  ========================================

A ``result`` carries its own sha256 digest over the *deterministic*
projection of the payload (the points; never the wall-clock stage
timings), computed by :func:`result_digest` on both ends. The
coordinator recomputes it on receipt (transport integrity) and compares
it across duplicate deliveries of the same cell (determinism contract).
"""

from __future__ import annotations

import hashlib
import json
import socket
import threading
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Sequence

from repro.core.errors import FarmError

#: Protocol version; a worker/coordinator mismatch refuses the pairing.
PROTOCOL_VERSION = 1

#: THE wire contract: every message kind and its exact payload key set
#: (beside the ``"t"`` discriminator). This table is the single
#: declaration both sides are checked against — ``repro check``'s
#: RC601/RC602 project rules verify that every dict literal produced
#: and every ``.get("t")`` dispatch or ``@consumes`` handler anywhere
#: in ``repro.farm`` / ``repro.cli`` agrees with it, so renaming a
#: kind or a key on one side of the wire is a static finding.
MESSAGE_KINDS: Dict[str, FrozenSet[str]] = {
    "hello": frozenset({"name", "pid", "protocol"}),
    "welcome": frozenset(
        {"protocol", "job", "identity", "heartbeat_interval"}
    ),
    "lease": frozenset(
        {"lease_id", "index", "attempt", "value", "seed", "policies"}
    ),
    "heartbeat": frozenset({"name"}),
    "result": frozenset(
        {
            "lease_id",
            "index",
            "attempt",
            "value",
            "seed",
            "points",
            "stages",
            "digest",
        }
    ),
    "error": frozenset(
        {"lease_id", "index", "attempt", "error", "fatal"}
    ),
    "shutdown": frozenset(),
    "status?": frozenset(),
    "status": frozenset(
        {
            "experiment",
            "state",
            "endpoint",
            "cells",
            "workers",
            "ledger",
            "worker_stages",
            "elapsed",
        }
    ),
}

#: Hard cap on a single message line — a farm message is a few KB of
#: points, so anything near this is a framing bug, not a big result.
MAX_MESSAGE_BYTES = 8 * 1024 * 1024


def result_digest(points: Sequence[Mapping[str, Any]]) -> str:
    """sha256 hex of a cell's points in canonical JSON form.

    Covers only fields that are a pure function of (sweep identity,
    value, seed): policy names and objectives. Stage timings are
    wall-clock and excluded, so two executions of the same cell — on
    different workers, attempts, or hosts — must digest identically.
    """
    canonical = json.dumps(
        [dict(point) for point in points],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def points_to_wire(points: Sequence[Any]) -> List[Dict[str, Any]]:
    """Serialize SweepPoints for the wire (plain dicts, stable keys)."""
    return [
        {
            "param_value": float(p.param_value),
            "policy": str(p.policy),
            "seed": int(p.seed),
            "ratio": float(p.ratio),
            "alg_objective": float(p.alg_objective),
            "opt_objective": float(p.opt_objective),
        }
        for p in points
    ]


def points_from_wire(payload: Sequence[Mapping[str, Any]]) -> List[Any]:
    """Rebuild SweepPoints from wire dicts (floats JSON round-trip
    losslessly, so this is byte-exact)."""
    from repro.analysis.sweep import SweepPoint

    return [
        SweepPoint(
            param_value=float(p["param_value"]),
            policy=str(p["policy"]),
            seed=int(p["seed"]),
            ratio=float(p["ratio"]),
            alg_objective=float(p["alg_objective"]),
            opt_objective=float(p["opt_objective"]),
        )
        for p in payload
    ]


class MessageStream:
    """One JSONL message stream over a connected socket.

    ``send`` is locked (the worker's heartbeat thread and lease loop
    share one socket); ``recv`` buffers bytes and yields one decoded
    object per line. ``recv`` returning ``None`` means clean EOF.

    Concurrency contract: ``_send_lock`` serializes *senders* only.
    ``recv`` is single-consumer by construction (exactly one reader
    thread owns each stream) and ``close`` is teardown — both touch
    ``_sock`` without the lock, each with a justified RC501
    suppression below.
    """

    # repro: guarded-by[_sock]=_send_lock

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._buffer = b""
        self._send_lock = threading.Lock()

    def send(self, message: Mapping[str, Any]) -> None:
        data = (
            json.dumps(message, separators=(",", ":")) + "\n"
        ).encode("utf-8")
        with self._send_lock:
            self._sock.sendall(data)

    def recv(self, timeout: Optional[float] = None) -> Optional[Dict[str, Any]]:
        """Next message, ``None`` on EOF.

        Raises ``socket.timeout`` when ``timeout`` elapses mid-wait and
        :class:`FarmError` on an unparseable or oversized line (a
        framing bug or a foreign client — the connection is unusable).
        """
        while b"\n" not in self._buffer:
            if len(self._buffer) > MAX_MESSAGE_BYTES:
                raise FarmError(
                    f"farm message exceeds {MAX_MESSAGE_BYTES} bytes "
                    f"without a newline; dropping the connection"
                )
            # repro: allow[RC501] -- recv path; one reader owns it
            self._sock.settimeout(timeout)
            # repro: allow[RC501] -- recv path; one reader owns it
            chunk = self._sock.recv(65536)
            if not chunk:
                return None
            self._buffer += chunk
        line, _, self._buffer = self._buffer.partition(b"\n")
        if not line.strip():
            return self.recv(timeout)
        try:
            message = json.loads(line)
        except json.JSONDecodeError as exc:
            raise FarmError(f"unparseable farm message: {exc}") from exc
        if not isinstance(message, dict) or "t" not in message:
            raise FarmError(
                f"farm message is not a typed object: {message!r}"
            )
        return message

    def close(self) -> None:
        """Idempotent teardown; safe to race a sender (it gets OSError,
        which every call site already treats as a dead peer)."""
        try:
            # repro: allow[RC501] -- teardown; racing senders see OSError
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            # repro: allow[RC501] -- teardown; racing senders see OSError
            self._sock.close()
        except OSError:  # pragma: no cover - double close
            pass


def hello(name: str, pid: int) -> Dict[str, Any]:
    return {
        "t": "hello",
        "name": str(name),
        "pid": int(pid),
        "protocol": PROTOCOL_VERSION,
    }


def welcome(
    job: Mapping[str, Any],
    identity: Optional[Mapping[str, Any]],
    heartbeat_interval: float,
) -> Dict[str, Any]:
    return {
        "t": "welcome",
        "protocol": PROTOCOL_VERSION,
        "job": dict(job),
        "identity": dict(identity) if identity is not None else None,
        "heartbeat_interval": float(heartbeat_interval),
    }


def lease(
    lease_id: int,
    index: int,
    attempt: int,
    value: float,
    seed: int,
    policies: Sequence[str],
) -> Dict[str, Any]:
    return {
        "t": "lease",
        "lease_id": int(lease_id),
        "index": int(index),
        "attempt": int(attempt),
        "value": float(value),
        "seed": int(seed),
        "policies": list(policies),
    }


def heartbeat(name: str) -> Dict[str, Any]:
    return {"t": "heartbeat", "name": str(name)}


def result(
    lease_id: int,
    index: int,
    attempt: int,
    value: float,
    seed: int,
    points: Sequence[Mapping[str, Any]],
    stages: Mapping[str, float],
) -> Dict[str, Any]:
    return {
        "t": "result",
        "lease_id": int(lease_id),
        "index": int(index),
        "attempt": int(attempt),
        "value": float(value),
        "seed": int(seed),
        "points": [dict(p) for p in points],
        "stages": dict(stages),
        "digest": result_digest(points),
    }


def error(
    lease_id: int,
    index: int,
    attempt: int,
    message: str,
    *,
    fatal: bool,
) -> Dict[str, Any]:
    return {
        "t": "error",
        "lease_id": int(lease_id),
        "index": int(index),
        "attempt": int(attempt),
        "error": str(message),
        "fatal": bool(fatal),
    }


def shutdown() -> Dict[str, Any]:
    return {"t": "shutdown"}


def status_query() -> Dict[str, Any]:
    """One-shot status request (``repro farm status``); any client may
    send it, before or instead of ``hello``."""
    return {"t": "status?"}
