"""Merging per-worker run journals into one canonical journal.

Every farm participant may keep its own :class:`RunJournal` — the
coordinator's (via ``repro run --journal``) records delivered results
in arrival order; each worker's (via ``repro farm work --journal``)
records the cells it computed locally. All of them share the sweep's
identity header, and every journal line for a given ``(value, seed)``
must contain the same points — that is the determinism contract.

``merge_run_journals`` verifies exactly that while folding any number
of journal streams into the *canonical projection* defined by
:func:`repro.resilience.journal.canonical_journal_lines`: header
first, cells sorted by ``(value, seed)``, wall-clock stage timings
excluded. Two merged journals for the same sweep are byte-identical
regardless of which workers computed what, in which order, with which
faults — which is what lets the chaos wall (and CI's farm-smoke job)
``cmp`` a chaotic farm run against a clean serial one.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.core.errors import FarmError, ResilienceError
from repro.resilience.atomic import atomic_write_text
from repro.resilience.journal import (
    CellKey,
    canonical_journal_digest,
    canonical_journal_lines,
    read_journal,
)


def _canonical(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def merge_run_journals(
    paths: Sequence[Path | str],
    out: Optional[Path | str] = None,
) -> Dict[str, Any]:
    """Merge journals into one canonical journal; verify determinism.

    All inputs must carry the same sweep identity (merging different
    sweeps raises :class:`ResilienceError`). Cells appearing in more
    than one journal — reissued leases land in two workers' journals
    by design — must agree on their points byte-for-byte; divergence
    raises :class:`FarmError`. When ``out`` is given the canonical
    projection is written there atomically.

    Returns a report: ``cells``, ``duplicates`` (cross-journal
    re-recordings that passed the equality check), ``sources``,
    ``digest`` (sha256 of the canonical projection), and ``out``.
    """
    if not paths:
        raise ResilienceError("merge needs at least one journal")
    identity: Optional[Dict[str, Any]] = None
    identity_source: Optional[Path] = None
    merged: Dict[CellKey, Dict[str, Any]] = {}
    duplicates = 0
    for raw in paths:
        path = Path(raw)
        this_identity, entries = read_journal(path)
        if identity is None:
            identity = this_identity
            identity_source = path
        elif _canonical(this_identity) != _canonical(identity):
            raise ResilienceError(
                f"journal {path} belongs to a different sweep than "
                f"{identity_source}; refusing to merge"
            )
        for key, entry in entries.items():
            previous = merged.get(key)
            if previous is None:
                merged[key] = entry
                continue
            if _canonical(entry["points"]) != _canonical(
                previous["points"]
            ):
                value, seed = key
                raise FarmError(
                    f"determinism violation: cell (value={value:g}, "
                    f"seed={seed}) disagrees between journals "
                    f"(last: {path}); duplicate recordings of one "
                    f"cell must be byte-identical"
                )
            duplicates += 1
    assert identity is not None
    digest = canonical_journal_digest(identity, merged)
    out_path: Optional[Path] = None
    if out is not None:
        out_path = Path(out)
        lines: List[str] = canonical_journal_lines(identity, merged)
        atomic_write_text(out_path, "\n".join(lines) + "\n")
    return {
        "identity": identity,
        "cells": len(merged),
        "duplicates": duplicates,
        "sources": [str(Path(p)) for p in paths],
        "digest": digest,
        "out": str(out_path) if out_path is not None else None,
    }
