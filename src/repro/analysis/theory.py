"""Closed-form competitive-ratio bounds from the paper's theorems.

These formulas let experiments overlay analytic bounds onto measured
curves, and let tests check that simulated adversarial constructions land
where the proofs predict. Each function documents the theorem it encodes;
"lower bound" means a lower bound on the policy's competitive ratio
(i.e. the policy is provably at least this bad in the worst case), "upper
bound" means a guarantee (the policy is never worse).
"""

from __future__ import annotations

import math

from repro._math import EULER_GAMMA, harmonic_number, harmonic_range


# ---------------------------------------------------------------------------
# Heterogeneous processing (Section III)
# ---------------------------------------------------------------------------


def nhst_competitiveness(k: int, z: float) -> float:
    """Theorem 1: NHST is ``kZ + o(kZ)``-competitive (tight).

    ``Z = sum_i 1/w_i``; in the contiguous configuration ``Z = H_k``.
    """
    return k * z


def nest_competitiveness(n: int) -> float:
    """Theorem 2: NEST is ``n + o(n)``-competitive (tight) — complete
    partitioning reduces each queue to an optimal isolated queue of size
    ``B/n``."""
    return float(n)


def nhdt_lower_bound(k: int) -> float:
    """Theorem 3 (asymptotic): NHDT is at least
    ``(1/2) sqrt(k ln k) - o(.)``-competitive under heterogeneous work."""
    if k < 2:
        return 1.0
    return 0.5 * math.sqrt(k * math.log(k))


def nhdt_lower_bound_finite(k: int, buffer_size: int, h: int) -> float:
    """Theorem 3, finite parameters: the proof's ratio before asymptotics.

    ``h = k - m`` is the number of heavy work classes in the burst
    (``sqrt(k / ln k)`` at the proof's optimum). With heavy-class service
    rate ``S = H_k - H_{k-h}`` and ``A = B / ln k``:

        ``(1 + S) / (S + A / ((B - h)(h + 1)))``.
    """
    heavy_rate = harmonic_number(k) - harmonic_number(k - h)
    a_const = buffer_size / math.log(k)
    period = buffer_size - h
    return (1.0 + heavy_rate) / (
        heavy_rate + a_const / (period * (h + 1))
    )


def lqd_processing_lower_bound(k: int) -> float:
    """Theorem 4 (asymptotic): LQD is at least ``sqrt(k) - o(sqrt(k))``-
    competitive under heterogeneous work."""
    return math.sqrt(k)


def lqd_processing_lower_bound_finite(
    k: int, buffer_size: int, m: int
) -> float:
    """Theorem 4, finite parameters (the proof's pre-optimization ratio)."""
    beta = harmonic_range(k - m + 1, k)
    frac = m / buffer_size
    return 1.0 + ((m - 1) / m - frac) / (1.0 / m + (1.0 - frac) * beta)


def bpd_lower_bound(k: int) -> float:
    """Theorem 5: BPD is at least ``ln k + gamma``-competitive (the exact
    construction yields ``H_k``)."""
    return math.log(k) + EULER_GAMMA if k >= 1 else 1.0


def bpd_lower_bound_exact(k: int) -> float:
    """Theorem 5's construction gives exactly ``H_k`` in the limit."""
    return harmonic_number(k)


def lwd_lower_bound_contiguous(buffer_size: int) -> float:
    """Theorem 6: LWD is at least ``4/3 - 6/B``-competitive in the
    contiguous case (works 1, 2, 3, 6; requires ``k >= 6``)."""
    return 4.0 / 3.0 - 6.0 / buffer_size


def lwd_lower_bound_uniform() -> float:
    """LWD inherits LQD's ``sqrt(2)`` lower bound under uniform work
    (Aiello et al.), since the two coincide there."""
    return math.sqrt(2.0)


def lwd_upper_bound() -> float:
    """Theorem 7 (the paper's main result): LWD is at most 2-competitive."""
    return 2.0


# ---------------------------------------------------------------------------
# Heterogeneous values (Section IV)
# ---------------------------------------------------------------------------


def greedy_value_lower_bound(k: int) -> float:
    """Section IV-B: any greedy non-push-out policy is at least
    ``k``-competitive in the value model (fill with 1s, then send ks)."""
    return float(k)


def lqd_value_lower_bound(k: int) -> float:
    """Theorem 9 (asymptotic): value-model LQD is at least
    ``cbrt(k) - o(cbrt(k))``-competitive."""
    return k ** (1.0 / 3.0)


def lqd_value_lower_bound_finite(k: int, a: int) -> float:
    """Theorem 9, finite parameters: ``(a(a-1)/2 + k) / (a(a-1)/2 + k/a)``."""
    half = 0.5 * a * (a - 1)
    return (half + k) / (half + k / a)


def mvd_lower_bound(k: int, buffer_size: int) -> float:
    """Theorem 10: MVD is at least ``(m-1)/2``-competitive,
    ``m = min(k, B)``."""
    m = min(k, buffer_size)
    return (m - 1) / 2.0


def mrd_lower_bound_port_values() -> float:
    """Theorem 11: MRD is at least ``4/3``-competitive when values are
    port-determined."""
    return 4.0 / 3.0


def mrd_lower_bound_uniform_values() -> float:
    """MRD emulates LQD under unit values, inheriting the ``sqrt(2)``
    bound of Aiello et al."""
    return math.sqrt(2.0)


def any_online_lower_bound_value_model() -> float:
    """The 4/3 lower bound on *any* online policy in the shared-memory
    model with unit values (Aiello et al.), which the paper notes carries
    over to the value model."""
    return 4.0 / 3.0
