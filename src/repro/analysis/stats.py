"""Small statistics helpers for replicated simulation runs."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.errors import ConfigError


@dataclass(frozen=True)
class Summary:
    """Mean, spread, and a normal-approximation 95% confidence interval."""

    n: int
    mean: float
    std: float
    ci95_half_width: float

    @property
    def ci_low(self) -> float:
        return self.mean - self.ci95_half_width

    @property
    def ci_high(self) -> float:
        return self.mean + self.ci95_half_width

    def __str__(self) -> str:
        return f"{self.mean:.4f} +/- {self.ci95_half_width:.4f} (n={self.n})"


def summarize(samples: Sequence[float]) -> Summary:
    """Summarize replicated measurements (e.g. ratios across seeds)."""
    if not samples:
        raise ConfigError("cannot summarize an empty sample set")
    n = len(samples)
    mean = sum(samples) / n
    if n == 1:
        return Summary(n=1, mean=mean, std=0.0, ci95_half_width=0.0)
    variance = sum((x - mean) ** 2 for x in samples) / (n - 1)
    std = math.sqrt(variance)
    half_width = 1.96 * std / math.sqrt(n)
    return Summary(n=n, mean=mean, std=std, ci95_half_width=half_width)


def geometric_mean(samples: Sequence[float]) -> float:
    """Geometric mean, natural for ratio-valued measurements."""
    if not samples:
        raise ConfigError("cannot average an empty sample set")
    if any(x <= 0 for x in samples):
        raise ConfigError("geometric mean requires positive samples")
    return math.exp(sum(math.log(x) for x in samples) / len(samples))
