"""Probing the paper's open conjecture: is MRD O(1)-competitive?

Section IV leaves the competitiveness of Maximal-Ratio-Drop open ("It
remains an interesting open problem to show whether MRD has a constant
competitive ratio in the worst case"). This module attacks the question
empirically with machinery the paper did not have: the exhaustive *true*
offline optimum of :mod:`repro.opt.exhaustive` is exact on tiny instances,
so the worst ratio over a large randomized sample of tiny instances — plus
an adversarial hill-climb that mutates the worst instances found — gives a
computational lower-bound profile for any policy.

Nothing here proves the conjecture; but a hill-climb that plateaus around
a small constant for MRD while blowing up for MVD on the same instance
family is evidence in the conjectured direction, and any instance found
with a big ratio is a ready-made counterexample candidate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

try:  # pure-stdlib installs can still import the module
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None  # type: ignore[assignment]

from repro.analysis.competitive import PolicySystem
from repro.core.config import QueueDiscipline, SwitchConfig
from repro.core.errors import ConfigError
from repro.core.packet import Packet
from repro.opt.exhaustive import TinyInstance, exhaustive_opt
from repro.policies import make_policy

#: Arrival lists as stored in TinyInstance: per slot, (port, value) pairs.
Arrivals = Tuple[Tuple[Tuple[int, float], ...], ...]



def _require_numpy() -> None:
    if np is None:
        raise ConfigError(
            "the adversarial search needs numpy (its draws are pinned to "
            "numpy.random.default_rng); install numpy to use it"
        )

@dataclass(frozen=True)
class ProbeResult:
    """One instance's exact competitive measurement."""

    arrivals: Arrivals
    alg_objective: float
    opt_objective: float

    @property
    def ratio(self) -> float:
        if self.alg_objective <= 0:
            return float("inf") if self.opt_objective > 0 else 1.0
        return self.opt_objective / self.alg_objective


@dataclass
class ConjectureReport:
    """Outcome of a randomized probe of one policy."""

    policy_name: str
    config: SwitchConfig
    trials: int
    worst: Optional[ProbeResult] = None
    ratios: List[float] = field(default_factory=list)

    @property
    def worst_ratio(self) -> float:
        return self.worst.ratio if self.worst else 1.0

    @property
    def mean_ratio(self) -> float:
        return sum(self.ratios) / len(self.ratios) if self.ratios else 1.0

    def summary(self) -> str:
        return (
            f"{self.policy_name}: worst ratio {self.worst_ratio:.4f}, "
            f"mean {self.mean_ratio:.4f} over {self.trials} instances "
            f"(n={self.config.n_ports}, B={self.config.buffer_size})"
        )


def _value_config(n_ports: int, buffer_size: int) -> SwitchConfig:
    return SwitchConfig.uniform(
        n_ports, buffer_size, work=1,
        discipline=QueueDiscipline.PRIORITY,
    )


# ---------------------------------------------------------------------------
# Processing-model variant: empirical worst cases for LWD & friends
# ---------------------------------------------------------------------------


def evaluate_processing_instance(
    policy_name: str,
    config: SwitchConfig,
    arrivals: Arrivals,
) -> ProbeResult:
    """Exact throughput ratio of a processing-model policy vs true OPT.

    The value in each (port, value) arrival pair is ignored — works come
    from the port, the objective is the packet count. Both sides drain.
    """
    instance = TinyInstance(config=config, arrivals=arrivals)
    opt = exhaustive_opt(instance, by_value=False)

    system = PolicySystem(config, make_policy(policy_name))
    for slot, burst in enumerate(arrivals):
        packets = [
            Packet(
                port=port, work=config.work_of(port), arrival_slot=slot
            )
            for port, _value in burst
        ]
        system.run_slot(packets)
    guard = config.buffer_size * config.max_work + 1
    while system.backlog > 0 and guard > 0:
        system.run_slot(())
        guard -= 1
    return ProbeResult(
        arrivals=arrivals,
        alg_objective=float(system.metrics.transmitted_packets),
        opt_objective=opt,
    )


def probe_processing_policy(
    policy_name: str,
    *,
    works: Tuple[int, ...] = (1, 2, 3),
    buffer_size: int = 4,
    n_slots: int = 4,
    max_burst: int = 4,
    total_budget: int = 10,
    trials: int = 200,
    seed: int = 0,
) -> ConjectureReport:
    """Randomized sample of exact throughput ratios (processing model).

    For LWD this probes Theorem 7 from below: over many exact tiny
    instances the worst observed ratio approaches the policy's true
    competitive ratio from inside the guaranteed [1, 2] window.
    """
    if trials < 1:
        raise ConfigError("probe needs at least one trial")
    _require_numpy()
    rng = np.random.default_rng(seed)
    config = SwitchConfig.from_works(works, buffer_size)
    report = ConjectureReport(
        policy_name=policy_name, config=config, trials=trials
    )
    for _ in range(trials):
        arrivals = random_arrivals(
            rng, config.n_ports, n_slots, max_burst, 1, total_budget
        )
        result = evaluate_processing_instance(
            policy_name, config, arrivals
        )
        report.ratios.append(result.ratio)
        if report.worst is None or result.ratio > report.worst.ratio:
            report.worst = result
    return report


def processing_adversarial_search(
    policy_name: str,
    *,
    works: Tuple[int, ...] = (1, 2, 3),
    buffer_size: int = 4,
    n_slots: int = 4,
    max_burst: int = 4,
    total_budget: int = 10,
    restarts: int = 5,
    steps_per_restart: int = 60,
    seed: int = 0,
) -> ProbeResult:
    """Hill-climb for a bad processing-model instance (exact ratios)."""
    _require_numpy()
    rng = np.random.default_rng(seed)
    config = SwitchConfig.from_works(works, buffer_size)
    best: Optional[ProbeResult] = None
    for _ in range(restarts):
        current = evaluate_processing_instance(
            policy_name,
            config,
            random_arrivals(
                rng, config.n_ports, n_slots, max_burst, 1, total_budget
            ),
        )
        for _ in range(steps_per_restart):
            candidate_arrivals = _mutate(
                rng, current.arrivals, config.n_ports, 1, max_burst,
                total_budget,
            )
            candidate = evaluate_processing_instance(
                policy_name, config, candidate_arrivals
            )
            if candidate.ratio > current.ratio:
                current = candidate
        if best is None or current.ratio > best.ratio:
            best = current
    assert best is not None
    return best


def evaluate_instance(
    policy_name: str,
    config: SwitchConfig,
    arrivals: Arrivals,
) -> ProbeResult:
    """Exact ratio of a policy vs the true OPT on one tiny instance.

    Both sides are fully drained after the final arrival slot so the
    measurement matches the offline objective (total value eventually
    transmitted by an infinite-horizon run of this finite input).
    """
    instance = TinyInstance(config=config, arrivals=arrivals)
    opt = exhaustive_opt(instance, by_value=True)

    system = PolicySystem(config, make_policy(policy_name))
    for slot, burst in enumerate(arrivals):
        packets = [
            Packet(port=port, work=1, value=value, arrival_slot=slot)
            for port, value in burst
        ]
        system.run_slot(packets)
    guard = config.buffer_size + 1
    while system.backlog > 0 and guard > 0:
        system.run_slot(())
        guard -= 1
    return ProbeResult(
        arrivals=arrivals,
        alg_objective=system.metrics.transmitted_value,
        opt_objective=opt,
    )


def random_arrivals(
    rng: np.random.Generator,
    n_ports: int,
    n_slots: int,
    max_burst: int,
    max_value: int,
    total_budget: int,
) -> Arrivals:
    """A random tiny value-model arrival pattern within a packet budget."""
    slots: List[Tuple[Tuple[int, float], ...]] = []
    remaining = total_budget
    for _ in range(n_slots):
        size = min(int(rng.integers(0, max_burst + 1)), remaining)
        remaining -= size
        slots.append(
            tuple(
                (int(rng.integers(0, n_ports)),
                 float(rng.integers(1, max_value + 1)))
                for _ in range(size)
            )
        )
    return tuple(slots)


def probe_policy(
    policy_name: str,
    *,
    n_ports: int = 3,
    buffer_size: int = 4,
    n_slots: int = 4,
    max_burst: int = 4,
    max_value: int = 8,
    total_budget: int = 12,
    trials: int = 200,
    seed: int = 0,
) -> ConjectureReport:
    """Randomized sample of exact ratios for a value-model policy."""
    if trials < 1:
        raise ConfigError("probe needs at least one trial")
    _require_numpy()
    rng = np.random.default_rng(seed)
    config = _value_config(n_ports, buffer_size)
    report = ConjectureReport(
        policy_name=policy_name, config=config, trials=trials
    )
    for _ in range(trials):
        arrivals = random_arrivals(
            rng, n_ports, n_slots, max_burst, max_value, total_budget
        )
        result = evaluate_instance(policy_name, config, arrivals)
        report.ratios.append(result.ratio)
        if report.worst is None or result.ratio > report.worst.ratio:
            report.worst = result
    return report


def _mutate(
    rng: np.random.Generator,
    arrivals: Arrivals,
    n_ports: int,
    max_value: int,
    max_burst: int,
    total_budget: int,
) -> Arrivals:
    """One local edit: add, delete, or relabel a packet."""
    slots = [list(burst) for burst in arrivals]
    move = rng.integers(0, 3)
    slot = int(rng.integers(0, len(slots)))
    if move == 0 and sum(len(s) for s in slots) < total_budget and (
        len(slots[slot]) < max_burst
    ):
        slots[slot].append(
            (int(rng.integers(0, n_ports)),
             float(rng.integers(1, max_value + 1)))
        )
    elif move == 1 and slots[slot]:
        slots[slot].pop(int(rng.integers(0, len(slots[slot]))))
    elif slots[slot]:
        idx = int(rng.integers(0, len(slots[slot])))
        slots[slot][idx] = (
            int(rng.integers(0, n_ports)),
            float(rng.integers(1, max_value + 1)),
        )
    return tuple(tuple(s) for s in slots)


def adversarial_search(
    policy_name: str,
    *,
    n_ports: int = 3,
    buffer_size: int = 4,
    n_slots: int = 4,
    max_burst: int = 4,
    max_value: int = 8,
    total_budget: int = 12,
    restarts: int = 5,
    steps_per_restart: int = 60,
    seed: int = 0,
) -> ProbeResult:
    """Hill-climb for a bad instance: mutate, keep strict improvements.

    Returns the worst (highest-ratio) instance found over all restarts.
    Ratios are exact (true OPT), so the result is a certified lower bound
    on the policy's competitive ratio over this instance family.
    """
    _require_numpy()
    rng = np.random.default_rng(seed)
    config = _value_config(n_ports, buffer_size)
    best: Optional[ProbeResult] = None
    for _ in range(restarts):
        current = evaluate_instance(
            policy_name,
            config,
            random_arrivals(
                rng, n_ports, n_slots, max_burst, max_value, total_budget
            ),
        )
        for _ in range(steps_per_restart):
            candidate_arrivals = _mutate(
                rng, current.arrivals, n_ports, max_value, max_burst,
                total_budget,
            )
            candidate = evaluate_instance(
                policy_name, config, candidate_arrivals
            )
            if candidate.ratio > current.ratio:
                current = candidate
        if best is None or current.ratio > best.ratio:
            best = current
    assert best is not None
    return best
