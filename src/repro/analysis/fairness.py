"""Fairness metrics over per-port service.

The paper's architectural argument (Section I) is about *fairness across
traffic types*: complete sharing lets one port monopolize the buffer,
complete partitioning wastes it, and the single-queue PQ starves heavy
types outright. These metrics quantify that discussion:

* :func:`jain_index` — the classical Jain fairness index over per-port
  service rates: 1.0 when all ports are served equally, ``1/n`` when one
  port gets everything.
* :func:`work_normalized_shares` — per-port transmitted *work* (packets
  times their processing requirement) as a fraction of the total; in the
  shared-memory switch each busy port burns one core, so equal
  work-shares mean no type starves regardless of its per-packet cost.
* :func:`service_profile` — the combined per-port record used by the
  architecture experiment and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.config import SwitchConfig
from repro.core.errors import ConfigError
from repro.core.metrics import SwitchMetrics


def jain_index(shares: Sequence[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    Ranges from ``1/n`` (maximally unfair) to ``1.0`` (perfectly fair);
    an all-zero allocation is defined as perfectly fair (nothing served,
    nothing skewed).
    """
    if not shares:
        raise ConfigError("jain_index of an empty allocation")
    if any(x < 0 for x in shares):
        raise ConfigError("jain_index requires non-negative shares")
    total = sum(shares)
    if total == 0:
        return 1.0
    square_sum = sum(x * x for x in shares)
    return (total * total) / (len(shares) * square_sum)


def work_normalized_shares(
    config: SwitchConfig, metrics: SwitchMetrics
) -> List[float]:
    """Per-port share of transmitted *work* (service time consumed)."""
    work = [
        metrics.transmitted_by_port[port] * config.work_of(port)
        for port in range(config.n_ports)
    ]
    total = sum(work)
    if total == 0:
        return [0.0] * config.n_ports
    return [w / total for w in work]


@dataclass(frozen=True)
class FairnessReport:
    """Fairness summary of one run."""

    packet_jain: float
    work_jain: float
    min_work_share: float
    max_work_share: float

    def summary(self) -> str:
        return (
            f"fairness: Jain(packets)={self.packet_jain:.3f}, "
            f"Jain(work)={self.work_jain:.3f}, work shares "
            f"[{self.min_work_share:.3f}, {self.max_work_share:.3f}]"
        )


def service_profile(
    config: SwitchConfig, metrics: SwitchMetrics
) -> FairnessReport:
    """Fairness report from a finished run's metrics."""
    packet_shares = [float(x) for x in metrics.transmitted_by_port]
    work_shares = work_normalized_shares(config, metrics)
    return FairnessReport(
        packet_jain=jain_index(packet_shares),
        work_jain=jain_index(work_shares),
        min_work_share=min(work_shares),
        max_work_share=max(work_shares),
    )
