"""Cross-cell trace reuse: a content-keyed store of columnar traces.

Many sweep cells share one arrival trace. A Fig. 5 buffer sweep (panels
2, 5, 8) varies only ``B``, which no MMPP generator consumes — every
``B`` value at a given seed replays byte-identical arrivals. Without
reuse the sweep regenerates that trace once per cell; at paper scale
(2*10^6 slots) generation rivals simulation, so a six-value B-sweep
pays the dominant cost six times over.

A :class:`TraceStore` memoizes traces under caller-supplied *content
keys*: strings that encode everything the generator consumed (recipe,
its parameters, the seed) and nothing it ignored. The key contract is
the same as the sweep cache's ``cache_token`` — two cells may share a
key only when their generators provably produce identical packet
streams. Keys are computed per cell by a ``trace_key`` callable (see
:func:`repro.analysis.sweep.run_sweep`); returning ``None`` for a cell
opts it out of reuse.

Two tiers:

* a per-process LRU memo of live :class:`ColumnarTrace` objects —
  the fast path within one sweep (and one forked worker);
* an optional on-disk artifact directory (``<sha256(key)>.cols``) so
  repeated runs, report regeneration, and sibling ``jobs=N`` workers
  each generate a given trace at most once per machine, not per
  process.

The artifact format is self-describing and backend-free: a magic tag,
a JSON header (schema, column layout, payload checksum, the full key),
then the raw little-or-native-endian int64/float64 column buffers.
Artifacts are published atomically (tmp + fsync + ``os.replace``) and
verified by checksum on load; a torn, stale, or corrupt artifact is
treated as a miss and rebuilt. Concurrent workers may race to build
the same key — both write identical bytes and the atomic replace makes
the race harmless.

Reuse is an execution optimization, never an identity: store and key
appear in **no** cache key and **no** journal identity, and a sweep
with reuse enabled is ``cmp``-identical to the same sweep without it
(pinned by the tier-1 suite, serial and parallel).
"""

from __future__ import annotations

import hashlib
import json
from array import array
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.core.config import SwitchConfig
from repro.core.errors import ConfigError
from repro.traffic.columnar import ColumnarTrace
from repro.traffic.trace import Trace

__all__ = ["TraceKeyFn", "TraceStore"]

#: Per-cell content-key function: maps ``(config, value, seed)`` to the
#: trace's content key, or ``None`` to disable reuse for that cell.
TraceKeyFn = Callable[[SwitchConfig, float, int], Optional[str]]

_MAGIC = b"RPCOLS1\n"
_SCHEMA = 1
#: Column buffer kinds: 8-byte native-order signed ints / IEEE doubles
#: (``array('q')`` / ``array('d')`` — identical to numpy's int64 /
#: float64 buffers on every supported platform).
_KINDS = {"i8": "q", "f8": "d"}
_INT_COLUMNS = ("offsets", "ports", "works", "opts", "arrivals")


def _artifact_name(key: str) -> str:
    """Filesystem-safe artifact name for an arbitrary content key."""
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:40] + ".cols"


def _column_bytes(column: Any) -> bytes:
    """Raw buffer of a backend column (numpy ndarray or stdlib array)."""
    return column.tobytes()


class TraceStore:
    """Content-keyed memo + artifact store for columnar traces.

    Parameters
    ----------
    directory:
        Artifact directory for the on-disk tier; ``None`` keeps the
        store memory-only. Created on first write.
    memo_size:
        Live traces kept in the in-process LRU memo. Sized for the
        sweep iteration order (values outer, seeds inner): a B-sweep
        revisits a seed's trace every ``len(seeds)`` cells, so the
        default comfortably covers realistic seed counts.
    """

    def __init__(
        self,
        directory: Optional[Union[Path, str]] = None,
        *,
        memo_size: int = 16,
    ) -> None:
        if memo_size < 1:
            raise ConfigError(f"memo_size must be >= 1, got {memo_size}")
        self.directory = Path(directory) if directory is not None else None
        self._memo: "OrderedDict[str, ColumnarTrace]" = OrderedDict()
        self._memo_size = memo_size
        #: Telemetry: memo hits / artifact loads / generator invocations.
        self.memo_hits = 0
        self.disk_hits = 0
        self.builds = 0

    # ------------------------------------------------------------------
    # The one entry point
    # ------------------------------------------------------------------

    def get_or_build(
        self,
        key: str,
        builder: Callable[[], Union[Trace, ColumnarTrace]],
    ) -> ColumnarTrace:
        """Return the trace stored under ``key``, building it at most once.

        Lookup order: memo, then disk artifact, then ``builder()``.
        Object :class:`Trace` results are converted via
        :meth:`ColumnarTrace.from_trace` (packet order and content
        preserved), so both engines replay the stored trace identically
        to the freshly generated one.
        """
        if not key:
            raise ConfigError("trace store key must be a non-empty string")
        trace = self._memo.get(key)
        if trace is not None:
            self._memo.move_to_end(key)
            self.memo_hits += 1
            return trace
        trace = self._load(key)
        if trace is not None:
            self.disk_hits += 1
            self._remember(key, trace)
            return trace
        built = builder()
        trace = (
            built
            if isinstance(built, ColumnarTrace)
            else ColumnarTrace.from_trace(built)
        )
        self.builds += 1
        self._save(key, trace)
        self._remember(key, trace)
        return trace

    def _remember(self, key: str, trace: ColumnarTrace) -> None:
        self._memo[key] = trace
        self._memo.move_to_end(key)
        while len(self._memo) > self._memo_size:
            self._memo.popitem(last=False)

    # ------------------------------------------------------------------
    # On-disk artifacts
    # ------------------------------------------------------------------

    def _save(self, key: str, trace: ColumnarTrace) -> None:
        if self.directory is None:
            return
        columns = trace.as_columns()
        specs: List[Dict[str, Any]] = []
        payload = bytearray()
        for name, column in columns.items():
            buf = _column_bytes(column)
            kind = "i8" if name in _INT_COLUMNS else "f8"
            specs.append(
                {"name": name, "kind": kind, "count": len(buf) // 8}
            )
            payload.extend(buf)
        header = {
            "schema": _SCHEMA,
            "key": key,
            "columns": specs,
            "sha256": hashlib.sha256(bytes(payload)).hexdigest(),
        }
        header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
        blob = (
            _MAGIC
            + len(header_bytes).to_bytes(8, "big")
            + header_bytes
            + bytes(payload)
        )
        from repro.resilience.atomic import atomic_write_bytes

        atomic_write_bytes(self.directory / _artifact_name(key), blob)

    def _load(self, key: str) -> Optional[ColumnarTrace]:
        """Load ``key``'s artifact, or ``None`` on miss/corruption.

        Every structural defect — missing file, bad magic, torn header,
        checksum mismatch, wrong key (hash-prefix collision), malformed
        columns — degrades to a rebuild rather than an error: the store
        is a cache, and the generator is always able to recreate truth.
        """
        if self.directory is None:
            return None
        path = self.directory / _artifact_name(key)
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        try:
            if not blob.startswith(_MAGIC):
                return None
            pos = len(_MAGIC)
            header_len = int.from_bytes(blob[pos : pos + 8], "big")
            pos += 8
            header = json.loads(blob[pos : pos + header_len])
            pos += header_len
            payload = blob[pos:]
            if (
                header.get("schema") != _SCHEMA
                or header.get("key") != key
                or hashlib.sha256(payload).hexdigest()
                != header.get("sha256")
            ):
                return None
            columns: Dict[str, List[Any]] = {}
            offset = 0
            for spec in header["columns"]:
                kind = _KINDS[spec["kind"]]
                count = int(spec["count"])
                buf = array(kind)
                buf.frombytes(payload[offset : offset + count * 8])
                offset += count * 8
                columns[spec["name"]] = buf.tolist()
            if offset != len(payload):
                return None
            return ColumnarTrace(
                columns["offsets"],
                columns["ports"],
                columns["works"],
                columns["values"],
                columns.get("opts"),
                columns.get("arrivals"),
            )
        except (KeyError, ValueError, TypeError):
            return None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def summary(self) -> str:
        """One line of reuse telemetry for CLI footers."""
        return (
            f"trace store: {self.builds} built, "
            f"{self.memo_hits} memo hits, {self.disk_hits} disk hits"
        )
