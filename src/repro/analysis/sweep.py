"""Parameter sweeps: competitive ratio as a function of k, B, or C.

Fig. 5 of the paper consists of nine such sweeps (three per traffic
regime). A sweep is declarative: a callable builds the switch
configuration for each parameter value, another builds the (seeded)
workload, and the runner measures every policy on the *same* trace per
(value, seed) pair — policies must be compared on identical arrivals for
the ratios to be comparable.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.competitive import measure_competitive_ratio
from repro.analysis.stats import Summary, summarize
from repro.core.config import SwitchConfig
from repro.core.errors import ConfigError
from repro.policies import make_policy
from repro.traffic.trace import Trace

ConfigFactory = Callable[[float], SwitchConfig]
TraceFactory = Callable[[SwitchConfig, float, int], Trace]


@dataclass(frozen=True)
class SweepPoint:
    """One (parameter value, policy, seed) measurement."""

    param_value: float
    policy: str
    seed: int
    ratio: float
    alg_objective: float
    opt_objective: float


@dataclass
class SweepResult:
    """All measurements of one sweep, with aggregation helpers."""

    name: str
    param_name: str
    points: List[SweepPoint] = field(default_factory=list)

    def policies(self) -> List[str]:
        seen: Dict[str, None] = {}
        for point in self.points:
            seen.setdefault(point.policy, None)
        return list(seen)

    def param_values(self) -> List[float]:
        seen: Dict[float, None] = {}
        for point in self.points:
            seen.setdefault(point.param_value, None)
        return sorted(seen)

    def series(self, policy: str) -> List[Tuple[float, Summary]]:
        """(parameter value, ratio summary across seeds) for one policy."""
        result = []
        for value in self.param_values():
            samples = [
                p.ratio
                for p in self.points
                if p.policy == policy and p.param_value == value
            ]
            if samples:
                result.append((value, summarize(samples)))
        return result

    def to_csv(self, path: Path | str) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(
                [
                    self.param_name,
                    "policy",
                    "seed",
                    "ratio",
                    "alg_objective",
                    "opt_objective",
                ]
            )
            for p in self.points:
                writer.writerow(
                    [
                        p.param_value,
                        p.policy,
                        p.seed,
                        f"{p.ratio:.6f}",
                        f"{p.alg_objective:.3f}",
                        f"{p.opt_objective:.3f}",
                    ]
                )

    def format_table(self) -> str:
        """The sweep as a fixed-width table: one row per parameter value,
        one column per policy (mean ratio across seeds) — the same layout
        as a Fig. 5 panel read off as numbers."""
        policies = self.policies()
        header = [self.param_name.rjust(8)] + [p.rjust(9) for p in policies]
        lines = ["  ".join(header)]
        for value in self.param_values():
            cells = [f"{value:8g}"]
            for policy in policies:
                samples = [
                    pt.ratio
                    for pt in self.points
                    if pt.policy == policy and pt.param_value == value
                ]
                cells.append(
                    f"{summarize(samples).mean:9.4f}" if samples else " " * 9
                )
            lines.append("  ".join(cells))
        return "\n".join(lines)


def run_sweep(
    name: str,
    param_name: str,
    param_values: Sequence[float],
    config_factory: ConfigFactory,
    trace_factory: TraceFactory,
    policy_names: Sequence[str],
    *,
    seeds: Sequence[int] = (0,),
    by_value: Optional[bool] = None,
    flush_every: Optional[int] = None,
    drain: bool = False,
) -> SweepResult:
    """Measure every policy at every parameter value over every seed.

    The trace for a (value, seed) pair is generated once and replayed
    against all policies and the OPT surrogate.
    """
    if not param_values:
        raise ConfigError("sweep needs at least one parameter value")
    if not policy_names:
        raise ConfigError("sweep needs at least one policy")

    result = SweepResult(name=name, param_name=param_name)
    for value in param_values:
        config = config_factory(value)
        for seed in seeds:
            trace = trace_factory(config, value, seed)
            for policy_name in policy_names:
                policy = make_policy(policy_name)
                outcome = measure_competitive_ratio(
                    policy,
                    trace,
                    config,
                    by_value=by_value,
                    opt="surrogate",
                    flush_every=flush_every,
                    drain=drain,
                )
                result.points.append(
                    SweepPoint(
                        param_value=float(value),
                        policy=policy_name,
                        seed=seed,
                        ratio=outcome.ratio,
                        alg_objective=outcome.alg_objective,
                        opt_objective=outcome.opt_objective,
                    )
                )
    return result
