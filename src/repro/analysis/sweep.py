"""Parameter sweeps: competitive ratio as a function of k, B, or C.

Fig. 5 of the paper consists of nine such sweeps (three per traffic
regime). A sweep is declarative: a callable builds the switch
configuration for each parameter value, another builds the (seeded)
workload, and the runner measures every policy on the *same* trace per
(value, seed) pair — policies must be compared on identical arrivals for
the ratios to be comparable.

Execution model
---------------
The unit of work is a *cell*: one (parameter value, seed) pair. Within a
cell the trace is generated exactly once — from the cell's configuration
and its seed, nothing else — and replayed against every policy plus the
OPT surrogate, which is what makes per-policy ratios comparable. Cells
are mutually independent, so ``run_sweep(..., jobs=N)`` fans them out
over a :class:`concurrent.futures.ProcessPoolExecutor`; because each
worker re-derives its trace from the same ``(config, value, seed)``
triple the simulation is bit-for-bit identical to the serial path, and
results are reassembled in the canonical serial order (value, then seed,
then policy). The determinism contract is strict and tested: a parallel
run produces byte-identical CSV output to a serial run of the same spec.

Completed cells can be memoized in a content-addressed
:class:`~repro.analysis.cache.SweepCache`, letting interrupted
paper-scale runs resume and repeated panels skip straight to assembly.
Per-sweep throughput (cells/sec) and cache hit rate are collected in
:class:`SweepStats` and surfaced by the CLI and
``repro.experiments.report``.

Every cell funnels through :func:`repro.analysis.competitive.run_system`,
so sweeps inherit its fast-path behavior: idle empty-buffer stretches are
fast-forwarded, and setting ``REPRO_CHECK_INVARIANTS=K`` (exported to
worker processes automatically) runs the engine's O(B + n) self-checks
every ``K`` slots — cheap opt-in auditing for paper-scale runs without
per-slot scans.
"""

from __future__ import annotations

import csv
import io
import math
import multiprocessing
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.farm.coordinator import FarmOptions
    from repro.farm.jobs import FarmJob
    from repro.farm.ledger import FarmStats

from repro.analysis.cache import SweepCache
from repro.analysis.competitive import (
    ENGINES,
    AnyTrace,
    measure_competitive_ratio,
)
from repro.analysis.tracestore import TraceKeyFn, TraceStore
from repro.obs.counters import CounterRegistry
from repro.analysis.stats import Summary, summarize
from repro.core.config import SwitchConfig
from repro.core.errors import ConfigError, SweepExecutionError
from repro.policies import make_policy
from repro.resilience.faults import FaultInjector
from repro.resilience.journal import RunJournal
from repro.resilience.supervisor import (
    CellTask,
    ResilienceStats,
    SupervisedExecutor,
    SupervisorOptions,
)
ConfigFactory = Callable[[float], SwitchConfig]
TraceFactory = Callable[[SwitchConfig, float, int], AnyTrace]
ProgressCallback = Callable[[str], None]


@dataclass(frozen=True)
class SweepPoint:
    """One (parameter value, policy, seed) measurement."""

    param_value: float
    policy: str
    seed: int
    ratio: float
    alg_objective: float
    opt_objective: float


@dataclass
class SweepStats:
    """Execution telemetry of one :func:`run_sweep` call.

    ``cells_total`` counts (value, seed) pairs; a cell is *executed* when
    at least one of its policies had to be simulated (as opposed to all
    of them arriving from the cache). ``cache_hits``/``cache_misses``
    count per-(cell, policy) lookups, so a partially cached cell
    contributes to both.
    """

    cells_total: int = 0
    cells_executed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    elapsed_seconds: float = 0.0
    jobs: int = 1
    #: Accumulated wall-clock per pipeline stage across executed cells
    #: (``trace_gen`` / ``policy_run`` / ``opt_run``), collected through
    #: the :class:`~repro.obs.counters.CounterRegistry` façade. With
    #: ``jobs > 1`` the stages sum worker time, which can exceed
    #: ``elapsed_seconds``. Cached cells contribute nothing.
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    #: What the supervised executor had to absorb (retries, timeouts,
    #: pool rebuilds, journal-resumed cells, ...). All zero on a clean
    #: run.
    resilience: ResilienceStats = field(default_factory=ResilienceStats)
    #: The farm ledger when the sweep ran distributed (``None`` on
    #: purely local runs): leases issued/reissued/expired, heartbeats
    #: missed, duplicates verified, fallback cells, per-worker stage
    #: seconds. See :class:`repro.farm.ledger.FarmStats`.
    farm: Optional["FarmStats"] = None

    @property
    def cells_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.cells_total / self.elapsed_seconds

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        if lookups == 0:
            return 0.0
        return self.cache_hits / lookups

    def summary(self) -> str:
        """One line for CLI footers and report appendices."""
        text = (
            f"{self.cells_total} cells in {self.elapsed_seconds:.2f}s "
            f"({self.cells_per_second:.2f} cells/s, jobs={self.jobs})"
        )
        lookups = self.cache_hits + self.cache_misses
        if lookups:
            text += (
                f", cache {self.cache_hits}/{lookups} hits "
                f"({100 * self.cache_hit_rate:.0f}%)"
            )
        if self.stage_seconds:
            ranked = sorted(
                self.stage_seconds.items(),
                key=lambda item: item[1],
                reverse=True,
            )
            total = sum(seconds for _name, seconds in ranked)
            stages = ", ".join(
                f"{name} {seconds:.2f}s"
                + (f" ({seconds / total:.0%})" if total > 0 else "")
                for name, seconds in ranked
            )
            text += f"; stages: {stages}"
            if total > 0:
                text += f"; dominant: {ranked[0][0]}"
        if self.resilience.any():
            text += f"; resilience: {self.resilience.summary()}"
        if self.farm is not None and self.farm.any():
            text += f"; farm: {self.farm.summary()}"
        return text


@dataclass
class SweepResult:
    """All measurements of one sweep, with aggregation helpers."""

    name: str
    param_name: str
    points: List[SweepPoint] = field(default_factory=list)
    stats: SweepStats = field(default_factory=SweepStats, compare=False)

    def policies(self) -> List[str]:
        seen: Dict[str, None] = {}
        for point in self.points:
            seen.setdefault(point.policy, None)
        return list(seen)

    def param_values(self) -> List[float]:
        seen: Dict[float, None] = {}
        for point in self.points:
            seen.setdefault(point.param_value, None)
        return sorted(seen)

    def series(self, policy: str) -> List[Tuple[float, Summary]]:
        """(parameter value, ratio summary across seeds) for one policy."""
        result = []
        for value in self.param_values():
            samples = [
                p.ratio
                for p in self.points
                if p.policy == policy and p.param_value == value
            ]
            if samples:
                result.append((value, summarize(samples)))
        return result

    def to_csv(self, path: Path | str) -> None:
        """Write the per-cell results as CSV, published atomically.

        The rows are rendered in memory and land via tmp + fsync +
        rename, so an interrupted run can never leave a truncated CSV
        for the byte-identity checks (serial vs parallel, resume) to
        trip over. Bytes are unchanged from the previous direct write
        (csv's default \\r\\n row terminator included).
        """
        from repro.resilience.atomic import atomic_write_text

        buffer = io.StringIO(newline="")
        writer = csv.writer(buffer)
        writer.writerow(
            [
                self.param_name,
                "policy",
                "seed",
                "ratio",
                "alg_objective",
                "opt_objective",
            ]
        )
        for p in self.points:
            writer.writerow(
                [
                    p.param_value,
                    p.policy,
                    p.seed,
                    f"{p.ratio:.6f}",
                    f"{p.alg_objective:.3f}",
                    f"{p.opt_objective:.3f}",
                ]
            )
        atomic_write_text(path, buffer.getvalue())

    def format_table(self) -> str:
        """The sweep as a fixed-width table: one row per parameter value,
        one column per policy (mean ratio across seeds) — the same layout
        as a Fig. 5 panel read off as numbers."""
        policies = self.policies()
        header = [self.param_name.rjust(8)] + [p.rjust(9) for p in policies]
        lines = ["  ".join(header)]
        for value in self.param_values():
            cells = [f"{value:8g}"]
            for policy in policies:
                samples = [
                    pt.ratio
                    for pt in self.points
                    if pt.policy == policy and pt.param_value == value
                ]
                cells.append(
                    f"{summarize(samples).mean:9.4f}" if samples else " " * 9
                )
            lines.append("  ".join(cells))
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Cell execution (shared by the serial and parallel paths)
# ----------------------------------------------------------------------


@dataclass
class _CellContext:
    """Everything a worker needs to measure one cell.

    Factories are often closures (the Fig. 5 panel builders are local
    functions), so this object cannot be pickled; the parallel path
    relies on fork inheritance instead — see :func:`_run_cell_in_worker`.
    """

    config_factory: ConfigFactory
    trace_factory: TraceFactory
    by_value: Optional[bool]
    flush_every: Optional[int]
    drain: bool
    #: Optional deterministic fault injector; inherited by forked pool
    #: workers along with the rest of the context.
    injector: Optional[FaultInjector] = None
    #: Simulation engine for the ALG side of every cell. Deliberately
    #: *not* part of the cache key or journal identity: the engines are
    #: decision-identical by contract (docs/VECTORIZED.md), so a cached
    #: reference measurement is a valid vectorized measurement and
    #: vice versa.
    engine: str = "reference"
    #: Optional cross-cell trace reuse (docs/PIPELINE.md). Like the
    #: engine, reuse is pure execution mechanics — it changes *when* a
    #: trace is generated, never *what* it contains — so neither field
    #: joins any cache key or journal identity.
    trace_store: Optional[TraceStore] = None
    trace_key: Optional[TraceKeyFn] = None


def _execute_cell(
    ctx: _CellContext,
    value: float,
    seed: int,
    policy_names: Sequence[str],
    *,
    cell_index: int = 0,
    attempt: int = 0,
    in_worker: bool = False,
) -> Tuple[List[SweepPoint], Dict[str, float]]:
    """Measure ``policy_names`` on one (value, seed) cell.

    The trace is derived deterministically from (config, value, seed) and
    generated exactly once, so every policy in the cell sees identical
    arrivals — the invariant all ratio comparisons rest on. Serial and
    parallel runs both funnel through this function, which is what makes
    their outputs bit-for-bit identical.

    ``cell_index``/``attempt`` exist for the fault injector: crash,
    death, and hang faults fire at the top of the cell, corrupt faults
    mangle its result. A fault-free attempt of the same cell is
    untouched, which is what keeps chaos runs byte-identical to clean
    ones once every fault clause is exhausted.

    Returns the cell's points plus its per-stage wall-clock breakdown
    (``trace_gen`` / ``policy_run`` / ``opt_run``), which the runner
    folds into :attr:`SweepStats.stage_seconds`.
    """
    if ctx.injector is not None:
        ctx.injector.fire_in_cell(cell_index, attempt, allow_exit=in_worker)
    registry = CounterRegistry()
    config = ctx.config_factory(value)
    with registry.timer("trace_gen"):
        key = (
            ctx.trace_key(config, value, seed)
            if ctx.trace_store is not None and ctx.trace_key is not None
            else None
        )
        if key is None:
            trace = ctx.trace_factory(config, value, seed)
        else:
            assert ctx.trace_store is not None
            trace = ctx.trace_store.get_or_build(
                key, lambda: ctx.trace_factory(config, value, seed)
            )
    points: List[SweepPoint] = []
    for policy_name in policy_names:
        policy = make_policy(policy_name)
        outcome = measure_competitive_ratio(
            policy,
            trace,
            config,
            by_value=ctx.by_value,
            opt="surrogate",
            flush_every=ctx.flush_every,
            drain=ctx.drain,
            registry=registry,
            engine=ctx.engine,
        )
        points.append(
            SweepPoint(
                param_value=float(value),
                policy=policy_name,
                seed=seed,
                ratio=outcome.ratio,
                alg_objective=outcome.alg_objective,
                opt_objective=outcome.opt_objective,
            )
        )
    if ctx.injector is not None and ctx.injector.should(
        "corrupt", cell_index, attempt
    ):
        # Injected payload corruption: a NaN ratio up front and a
        # silently dropped policy at the back — both shapes the result
        # validator must catch.
        from dataclasses import replace

        points[0] = replace(points[0], ratio=float("nan"))
        points = points[:-1] if len(points) > 1 else points
    return points, registry.stage_seconds()


#: Cell context inherited by forked pool workers. Submitted arguments
#: must be picklable, but fork children share the parent's memory image
#: at creation time, so the (unpicklable) factories travel through this
#: module global instead of the call arguments.
_WORKER_CONTEXT: Optional[_CellContext] = None


def _run_cell_in_worker(
    cell_index: int,
    attempt: int,
    value: float,
    seed: int,
    policy_names: Tuple[str, ...],
) -> Tuple[List[SweepPoint], Dict[str, float]]:
    """Pool entry point: measure one cell using the forked context.

    The leading (index, attempt) pair is the supervised executor's
    worker-call contract; it lets the fault injector target specific
    cells and lets retried attempts escape exhausted fault clauses.
    """
    if _WORKER_CONTEXT is None:
        raise RuntimeError("worker forked without a context")
    return _execute_cell(
        _WORKER_CONTEXT,
        value,
        seed,
        policy_names,
        cell_index=cell_index,
        attempt=attempt,
        in_worker=True,
    )


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    """The ``fork`` multiprocessing context, or ``None`` where absent."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` request: ``None``/1 serial, 0 = all cores."""
    if jobs is None:
        return 1
    if jobs < 0:
        raise ConfigError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return multiprocessing.cpu_count()
    return jobs


# ----------------------------------------------------------------------
# Cache plumbing
# ----------------------------------------------------------------------


def _point_to_payload(point: SweepPoint) -> Dict[str, float]:
    return {
        "ratio": point.ratio,
        "alg_objective": point.alg_objective,
        "opt_objective": point.opt_objective,
    }


def _point_from_payload(
    payload: Mapping[str, float], value: float, seed: int, policy: str
) -> SweepPoint:
    return SweepPoint(
        param_value=float(value),
        policy=policy,
        seed=seed,
        ratio=float(payload["ratio"]),
        alg_objective=float(payload["alg_objective"]),
        opt_objective=float(payload["opt_objective"]),
    )


class _CellPlan:
    """Cache bookkeeping for one cell: hits up front, misses to run."""

    def __init__(
        self,
        value: float,
        seed: int,
        cached: Dict[str, SweepPoint],
        missing: Tuple[str, ...],
        keys: Dict[str, str],
    ) -> None:
        self.value = value
        self.seed = seed
        self.cached = cached
        self.missing = missing
        self.keys = keys


def _plan_cells(
    param_values: Sequence[float],
    seeds: Sequence[int],
    policy_names: Sequence[str],
    config_factory: ConfigFactory,
    cache: Optional[SweepCache],
    cache_token: Optional[Mapping[str, object]],
    by_value: Optional[bool],
    flush_every: Optional[int],
    drain: bool,
) -> List[_CellPlan]:
    """Resolve every cell against the cache (all misses when disabled)."""
    plans: List[_CellPlan] = []
    for value in param_values:
        config = config_factory(value) if cache is not None else None
        for seed in seeds:
            cached: Dict[str, SweepPoint] = {}
            keys: Dict[str, str] = {}
            missing: List[str] = []
            for policy in policy_names:
                if cache is None:
                    missing.append(policy)
                    continue
                assert cache_token is not None  # validated by run_sweep
                key = cache.key(
                    config=config,
                    workload=cache_token,
                    policy=policy,
                    param_value=value,
                    seed=seed,
                    by_value=by_value,
                    flush_every=flush_every,
                    drain=drain,
                )
                keys[policy] = key
                payload = cache.get(key)
                if payload is None:
                    missing.append(policy)
                else:
                    cached[policy] = _point_from_payload(
                        payload, value, seed, policy
                    )
            plans.append(
                _CellPlan(value, seed, cached, tuple(missing), keys)
            )
    return plans


def _validate_cell_result(
    plan: _CellPlan, cell_result: Any
) -> Optional[str]:
    """Reject structurally wrong or non-finite cell payloads.

    Returns a diagnostic string when the payload is unusable (the
    supervisor counts it corrupt and retries the cell) and ``None``
    when it is sound. This is the read-side half of the end-to-end
    integrity story: the cache checksums entries at rest, this checks
    results in flight — whether mangled by a sick worker, a truncated
    pickle, or the ``corrupt`` fault injector.
    """
    try:
        points, stage_seconds = cell_result
    except (TypeError, ValueError):
        return f"cell result is not a (points, stages) pair: {cell_result!r}"
    if not isinstance(stage_seconds, Mapping):
        return f"cell stage breakdown is not a mapping: {stage_seconds!r}"
    got = [getattr(point, "policy", None) for point in points]
    if got != list(plan.missing):
        return (
            f"cell ({plan.value:g}, {plan.seed}) returned policies "
            f"{got!r}, expected {list(plan.missing)!r}"
        )
    for point in points:
        if (
            point.param_value != float(plan.value)
            or point.seed != plan.seed
        ):
            return (
                f"point {point.policy!r} belongs to cell "
                f"({point.param_value:g}, {point.seed}), not "
                f"({plan.value:g}, {plan.seed})"
            )
        for field_name in ("ratio", "alg_objective", "opt_objective"):
            number = getattr(point, field_name)
            if not isinstance(number, float) or not math.isfinite(number):
                return (
                    f"point {point.policy!r} has non-finite "
                    f"{field_name}={number!r}"
                )
    return None


# ----------------------------------------------------------------------
# The sweep runner
# ----------------------------------------------------------------------


def run_sweep(
    name: str,
    param_name: str,
    param_values: Sequence[float],
    config_factory: ConfigFactory,
    trace_factory: TraceFactory,
    policy_names: Sequence[str],
    *,
    seeds: Sequence[int] = (0,),
    by_value: Optional[bool] = None,
    flush_every: Optional[int] = None,
    drain: bool = False,
    jobs: Optional[int] = None,
    cache: Optional[SweepCache] = None,
    cache_token: Optional[Mapping[str, object]] = None,
    progress: Optional[ProgressCallback] = None,
    resilience: Optional[SupervisorOptions] = None,
    journal: Optional[RunJournal] = None,
    fault_injector: Optional[FaultInjector] = None,
    engine: str = "reference",
    trace_store: Optional[TraceStore] = None,
    trace_key: Optional[TraceKeyFn] = None,
    farm: Optional["FarmOptions"] = None,
    farm_job: Optional["FarmJob"] = None,
) -> SweepResult:
    """Measure every policy at every parameter value over every seed.

    The trace for a (value, seed) pair is generated once and replayed
    against all policies and the OPT surrogate.

    Parameters
    ----------
    jobs:
        Worker processes for cell execution. ``None``/1 run serially in
        this process; ``0`` means one worker per CPU core. Parallel runs
        produce byte-identical results to serial runs (cells are
        reassembled in the canonical value, seed, policy order).
    cache:
        Optional :class:`~repro.analysis.cache.SweepCache`; completed
        (cell, policy) measurements are reused, newly computed ones
        stored. Requires ``cache_token``.
    cache_token:
        JSON-serializable description of the workload generator behind
        ``trace_factory`` (experiment id, model, ``n_slots``, load, ...).
        It becomes part of the content address, so two sweeps share
        entries only when their traces are genuinely identical.
    progress:
        Called with one formatted line per completed cell — lightweight
        progress reporting for paper-scale runs.
    resilience:
        Supervision knobs (per-cell timeout, retry budget, backoff,
        pool-rebuild tolerance); defaults apply when omitted. Failures
        beyond the retry budget quarantine the cell and surface as
        :class:`~repro.core.errors.SweepExecutionError` carrying the
        partial result — completed cells are never discarded.
    journal:
        Optional :class:`~repro.resilience.journal.RunJournal`. The
        runner opens it against this sweep's identity, restores any
        previously journaled cells (skipping their recomputation), and
        appends each newly completed cell — which is what makes an
        interrupted run resumable. SIGINT/SIGTERM surface as
        :class:`~repro.core.errors.SweepInterrupted` *after* completed
        cells were journaled.
    fault_injector:
        Deterministic chaos source for tests and the CI chaos-smoke
        job; falls back to the ``REPRO_FAULTS`` environment spec when
        omitted. Injected faults are absorbed by the supervision layer,
        so a chaos run's output is byte-identical to a clean run's.
    engine:
        Simulation engine for the ALG side of every cell
        (``"reference"`` or ``"vectorized"``; see
        :data:`repro.analysis.competitive.ENGINES`). Excluded from the
        cache key and the journal identity on purpose: the engines are
        decision-identical by contract, so measurements interchange —
        switching engines must not invalidate a cache or block a
        journal resume.
    trace_store / trace_key:
        Cross-cell trace reuse (:mod:`repro.analysis.tracestore`).
        ``trace_key`` maps each cell's ``(config, value, seed)`` to a
        content key covering everything its generator consumes (a
        ``None`` key opts the cell out); cells sharing a key generate
        their trace once and replay the stored columns. Both must be
        provided for reuse to engage. Like ``engine``, reuse is
        excluded from cache keys and journal identity: it cannot
        change any cell's arrivals, only skip regenerating them —
        output is byte-identical with reuse on or off, serial or
        parallel.
    farm / farm_job:
        Distributed execution (:mod:`repro.farm`). ``farm`` carries the
        coordinator knobs (worker count, lease TTL, heartbeat cadence,
        reissue budget); ``farm_job`` is the declarative recipe remote
        workers use to rebuild this sweep's cell function — required
        because the factories here may be unpicklable closures. Cells
        the farm cannot finish degrade to the local pool → serial
        chain. Like every other execution knob, farming never changes
        output bytes; the farm ledger lands on ``stats.farm``.
    """
    if not param_values:
        raise ConfigError("sweep needs at least one parameter value")
    if not policy_names:
        raise ConfigError("sweep needs at least one policy")
    if engine not in ENGINES:
        raise ConfigError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )
    if cache is not None and cache_token is None:
        raise ConfigError(
            "caching a sweep requires a cache_token describing the "
            "workload (see repro.analysis.cache)"
        )
    if farm is not None and farm_job is None:
        raise ConfigError(
            "farm execution needs a farm_job describing how workers "
            "rebuild the cell context (see repro.farm.jobs)"
        )
    n_jobs = resolve_jobs(jobs)
    injector = (
        fault_injector
        if fault_injector is not None
        else FaultInjector.from_env()
    )
    if (
        cache is not None
        and injector is not None
        and cache.fault_injector is None
    ):
        cache.fault_injector = injector

    started = time.perf_counter()
    # A cache may be shared across sweeps (the report runs nine panels on
    # one); snapshot its counters so stats reflect this sweep only.
    hits_before = cache.hits if cache is not None else 0
    misses_before = cache.misses if cache is not None else 0
    ctx = _CellContext(
        config_factory=config_factory,
        trace_factory=trace_factory,
        by_value=by_value,
        flush_every=flush_every,
        drain=drain,
        injector=injector,
        engine=engine,
        trace_store=trace_store,
        trace_key=trace_key,
    )
    plans = _plan_cells(
        param_values,
        seeds,
        policy_names,
        config_factory,
        cache,
        cache_token,
        by_value,
        flush_every,
        drain,
    )
    to_run = [plan for plan in plans if plan.missing]

    computed: Dict[Tuple[float, int], Dict[str, SweepPoint]] = {}
    stage_registry = CounterRegistry()
    res_stats = ResilienceStats()

    # The identity pins everything that determines cell results;
    # resuming against a journal from a different sweep raises, and
    # farm workers receive it so their journals merge with ours.
    identity = {
        "name": name,
        "param_name": param_name,
        "param_values": [float(v) for v in param_values],
        "seeds": [int(s) for s in seeds],
        "policies": list(policy_names),
        "by_value": by_value,
        "flush_every": flush_every,
        "drain": bool(drain),
        "cache_token": (
            dict(cache_token) if cache_token is not None else None
        ),
    }
    journal_open = False
    try:
        if journal is not None:
            journal.open(identity)
            journal_open = True
            remaining: List[_CellPlan] = []
            for plan in to_run:
                entry = journal.get(plan.value, plan.seed)
                if entry is None or not all(
                    policy in entry["points"] for policy in plan.missing
                ):
                    remaining.append(plan)
                    continue
                # Journaled payloads are the exact floats the original
                # run computed (JSON round-trips them losslessly), so a
                # resumed sweep's output is byte-identical.
                by_policy = {
                    policy: _point_from_payload(
                        entry["points"][policy], plan.value, plan.seed,
                        policy,
                    )
                    for policy in plan.missing
                }
                computed[(plan.value, plan.seed)] = by_policy
                if cache is not None:
                    for policy, point in by_policy.items():
                        cache.put(
                            plan.keys[policy], _point_to_payload(point)
                        )
                res_stats.resumed_cells += 1
            to_run = remaining

        def finish_cell(
            plan: _CellPlan,
            cell_result: Tuple[Sequence[SweepPoint], Mapping[str, float]],
            done: int,
        ) -> None:
            points, stage_seconds = cell_result
            stage_registry.merge_seconds(stage_seconds)
            by_policy = {point.policy: point for point in points}
            computed[(plan.value, plan.seed)] = by_policy
            if cache is not None:
                for policy, point in by_policy.items():
                    cache.put(plan.keys[policy], _point_to_payload(point))
            if journal is not None:
                journal.record(
                    plan.value,
                    plan.seed,
                    {
                        policy: _point_to_payload(point)
                        for policy, point in by_policy.items()
                    },
                    stage_seconds,
                )
            if progress is not None:
                elapsed = time.perf_counter() - started
                rate = done / elapsed if elapsed > 0 else 0.0
                progress(
                    f"{name}: cell {done}/{len(to_run)} "
                    f"({param_name}={plan.value:g}, seed={plan.seed}) "
                    f"[{rate:.2f} cells/s]"
                )

        mp_context = None
        if to_run and n_jobs > 1:
            mp_context = _fork_context()
            if mp_context is None:  # pragma: no cover - non-POSIX
                warnings.warn(
                    "parallel sweeps need the 'fork' start method; "
                    "falling back to serial execution",
                    RuntimeWarning,
                    stacklevel=2,
                )
                n_jobs = 1

        plan_by_key = {(plan.value, plan.seed): plan for plan in to_run}
        tasks = [
            CellTask(
                index=index,
                key=(plan.value, plan.seed),
                args=(plan.value, plan.seed, plan.missing),
            )
            for index, plan in enumerate(to_run)
        ]

        def local_fn(
            index: int,
            attempt: int,
            value: float,
            seed: int,
            missing: Tuple[str, ...],
        ) -> Tuple[List[SweepPoint], Dict[str, float]]:
            return _execute_cell(
                ctx, value, seed, missing,
                cell_index=index, attempt=attempt, in_worker=False,
            )

        supervisor_kwargs: Dict[str, Any] = dict(
            n_jobs=n_jobs,
            mp_context=mp_context,
            options=resilience,
            stats=res_stats,
            validate=lambda task, result: _validate_cell_result(
                plan_by_key[task.key], result
            ),
            on_complete=lambda task, result, done: finish_cell(
                plan_by_key[task.key], result, done
            ),
            injector=injector,
        )
        farm_stats: Optional["FarmStats"] = None
        if farm is not None:
            from repro.farm.executor import FarmExecutor
            from repro.farm.ledger import FarmStats as _FarmStats

            farm_stats = _FarmStats()
            executor: SupervisedExecutor = FarmExecutor(
                _run_cell_in_worker,
                local_fn,
                farm_options=farm,
                farm_job=farm_job,
                farm_stats=farm_stats,
                sweep_identity=identity,
                experiment=name,
                **supervisor_kwargs,
            )
        else:
            executor = SupervisedExecutor(
                _run_cell_in_worker, local_fn, **supervisor_kwargs
            )

        failures: List = []
        if tasks:
            global _WORKER_CONTEXT
            _WORKER_CONTEXT = ctx
            try:
                _, failures = executor.run(tasks)
            finally:
                _WORKER_CONTEXT = None
    finally:
        if journal_open:
            journal.close()

    # Reassemble in the canonical serial order regardless of completion
    # order or cache state, so output bytes never depend on scheduling.
    # With quarantined cells the result is partial: their points are
    # simply absent (and the error below carries the failure details).
    result = SweepResult(name=name, param_name=param_name)
    for plan in plans:
        fresh = computed.get((plan.value, plan.seed), {})
        for policy in policy_names:
            point = fresh.get(policy) or plan.cached.get(policy)
            if point is None:
                assert failures, (
                    f"cell ({plan.value}, {plan.seed}) lost policy "
                    f"{policy}"
                )
                continue
            result.points.append(point)

    res_stats.merge_into(stage_registry)
    if farm_stats is not None:
        farm_stats.merge_into(stage_registry)
    result.stats = SweepStats(
        cells_total=len(plans),
        cells_executed=len(to_run),
        cache_hits=(cache.hits - hits_before) if cache is not None else 0,
        cache_misses=(
            cache.misses - misses_before if cache is not None else 0
        ),
        elapsed_seconds=time.perf_counter() - started,
        jobs=n_jobs,
        stage_seconds=stage_registry.stage_seconds(),
        resilience=res_stats,
        farm=farm_stats,
    )
    if failures:
        preview = "; ".join(str(failure) for failure in failures[:3])
        if len(failures) > 3:
            preview += f"; ... ({len(failures) - 3} more)"
        raise SweepExecutionError(
            f"sweep {name!r}: {len(failures)} of {len(plans)} cells "
            f"quarantined after exhausting retries ({preview})",
            failures=tuple(failures),
            result=result,
        )
    return result
