"""One-at-a-time sensitivity analysis of the competitive ratio.

The paper's Fig. 5 sweeps one parameter per panel. This module runs the
complementary analysis for any pair of policies: starting from a base
operating point, each knob (buffer size, maximal work, offered load,
source duty cycle) is moved down/up one step while everything else stays
fixed, and the effect on each policy's ratio — and on the *gap* between
the two — is tabulated. A tornado-style summary shows which knob
dominates, which is how we chose the calibration documented in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.competitive import measure_competitive_ratio
from repro.core.config import SwitchConfig
from repro.core.errors import ConfigError
from repro.policies import make_policy
from repro.traffic.workloads import processing_workload


@dataclass(frozen=True)
class OperatingPoint:
    """A full parameterization of one processing-model measurement."""

    k: int = 8
    buffer_size: int = 64
    load: float = 3.0
    duty_cycle: float = 0.01  # ON fraction of each source
    mean_on_slots: float = 20.0
    n_slots: int = 1200
    seed: int = 0
    flush_every: Optional[int] = 400

    def with_changes(self, **changes) -> "OperatingPoint":
        data = {
            "k": self.k,
            "buffer_size": self.buffer_size,
            "load": self.load,
            "duty_cycle": self.duty_cycle,
            "mean_on_slots": self.mean_on_slots,
            "n_slots": self.n_slots,
            "seed": self.seed,
            "flush_every": self.flush_every,
        }
        data.update(changes)
        return OperatingPoint(**data)

    @property
    def mean_off_slots(self) -> float:
        if not 0.0 < self.duty_cycle < 1.0:
            raise ConfigError(
                f"duty cycle must be in (0, 1), got {self.duty_cycle}"
            )
        return self.mean_on_slots * (1.0 - self.duty_cycle) / self.duty_cycle


#: Knob name -> (down multiplier, up multiplier) applied to the base.
DEFAULT_KNOBS: Dict[str, Tuple[float, float]] = {
    "buffer_size": (0.5, 2.0),
    "k": (0.5, 2.0),
    "load": (0.67, 1.5),
    "duty_cycle": (0.25, 4.0),
}


@dataclass(frozen=True)
class SensitivityRow:
    """Effect of one knob on both policies' ratios."""

    knob: str
    low_value: float
    high_value: float
    ratios_low: Dict[str, float]
    ratios_high: Dict[str, float]
    base_gap: float

    def gap(self, ratios: Dict[str, float]) -> float:
        names = list(ratios)
        return ratios[names[1]] - ratios[names[0]]

    @property
    def gap_swing(self) -> float:
        """Magnitude of the knob's effect on the inter-policy gap."""
        return abs(self.gap(self.ratios_high) - self.gap(self.ratios_low))


@dataclass
class SensitivityReport:
    policy_a: str
    policy_b: str
    base: OperatingPoint
    base_ratios: Dict[str, float]
    rows: List[SensitivityRow]

    def tornado(self) -> List[Tuple[str, float]]:
        """Knobs ordered by their effect on the A-vs-B gap."""
        return sorted(
            ((row.knob, row.gap_swing) for row in self.rows),
            key=lambda item: -item[1],
        )

    def format_table(self) -> str:
        a, b = self.policy_a, self.policy_b
        lines = [
            f"base: {a}={self.base_ratios[a]:.3f} "
            f"{b}={self.base_ratios[b]:.3f} "
            f"(gap {self.base_ratios[b] - self.base_ratios[a]:+.3f})"
        ]
        header = (
            f"{'knob':>12s} {'low':>8s} {'high':>8s} "
            f"{a + '@lo':>8s} {b + '@lo':>8s} "
            f"{a + '@hi':>8s} {b + '@hi':>8s} {'swing':>7s}"
        )
        lines.append(header)
        for row in self.rows:
            lines.append(
                f"{row.knob:>12s} {row.low_value:8.3g} "
                f"{row.high_value:8.3g} "
                f"{row.ratios_low[a]:8.3f} {row.ratios_low[b]:8.3f} "
                f"{row.ratios_high[a]:8.3f} {row.ratios_high[b]:8.3f} "
                f"{row.gap_swing:7.3f}"
            )
        return "\n".join(lines)


def _measure(point: OperatingPoint, policies: Tuple[str, str]) -> Dict[str, float]:
    config = SwitchConfig.contiguous(point.k, max(point.buffer_size, point.k))
    trace = processing_workload(
        config,
        point.n_slots,
        load=point.load,
        seed=point.seed,
        mean_on_slots=point.mean_on_slots,
        mean_off_slots=point.mean_off_slots,
    )
    return {
        name: measure_competitive_ratio(
            make_policy(name), trace, config,
            by_value=False, flush_every=point.flush_every,
        ).ratio
        for name in policies
    }


def run_sensitivity(
    policy_a: str = "LWD",
    policy_b: str = "LQD",
    *,
    base: Optional[OperatingPoint] = None,
    knobs: Optional[Dict[str, Tuple[float, float]]] = None,
) -> SensitivityReport:
    """One-at-a-time sensitivity of two policies' ratios and their gap."""
    base = base or OperatingPoint()
    knobs = knobs or DEFAULT_KNOBS
    policies = (policy_a, policy_b)
    base_ratios = _measure(base, policies)
    base_gap = base_ratios[policy_b] - base_ratios[policy_a]

    rows: List[SensitivityRow] = []
    for knob, (down, up) in knobs.items():
        base_value = getattr(base, knob)
        low_value = base_value * down
        high_value = base_value * up
        if knob in ("buffer_size", "k"):
            low_value = max(2, int(round(low_value)))
            high_value = max(2, int(round(high_value)))
        low = base.with_changes(**{knob: low_value})
        high = base.with_changes(**{knob: high_value})
        rows.append(
            SensitivityRow(
                knob=knob,
                low_value=float(low_value),
                high_value=float(high_value),
                ratios_low=_measure(low, policies),
                ratios_high=_measure(high, policies),
                base_gap=base_gap,
            )
        )
    return SensitivityReport(
        policy_a=policy_a,
        policy_b=policy_b,
        base=base,
        base_ratios=base_ratios,
        rows=rows,
    )
