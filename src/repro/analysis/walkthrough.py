"""Single-slot walkthroughs: Fig. 2 and Fig. 4 as inspectable data.

The paper's Fig. 2 (processing model) and Fig. 4 (value model) each show
one time slot of several policies acting on the same pre-filled buffer
and the same arrival burst. This module produces that comparison as
structured data: seed a buffer state, offer a burst to each policy on
its own copy, record every admission verdict and the transmission
outcome. The `examples/` walkthrough scripts are thin presenters over
this; tests assert the verdict tables directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

from repro.core.config import SwitchConfig
from repro.core.decisions import ACCEPT, Action
from repro.core.errors import ConfigError
from repro.core.packet import Packet
from repro.core.switch import SharedMemorySwitch
from repro.policies import make_policy


@dataclass(frozen=True)
class Verdict:
    """One arrival's fate under one policy."""

    port: int
    work: int
    value: float
    action: Action
    victim_port: int | None

    def describe(self) -> str:
        if self.action is Action.ACCEPT:
            return "accept"
        if self.action is Action.DROP:
            return "drop"
        return f"push out tail of Q{self.victim_port}, accept"


@dataclass
class PolicySlot:
    """One policy's view of the walkthrough slot."""

    policy_name: str
    verdicts: List[Verdict] = field(default_factory=list)
    queues_before: List[List[float]] = field(default_factory=list)
    queues_after_arrivals: List[List[float]] = field(default_factory=list)
    queues_end: List[List[float]] = field(default_factory=list)
    transmitted_ports: List[int] = field(default_factory=list)
    transmitted_value: float = 0.0

    def verdict_for(self, index: int) -> Verdict:
        return self.verdicts[index]


@dataclass
class Walkthrough:
    """The full multi-policy comparison for one slot."""

    config: SwitchConfig
    slots: Dict[str, PolicySlot]

    def __getitem__(self, policy_name: str) -> PolicySlot:
        return self.slots[policy_name]


def _snapshot(switch: SharedMemorySwitch, by_value: bool) -> List[List[float]]:
    out: List[List[float]] = []
    for queue in switch.queues:
        if by_value:
            out.append([p.value for p in queue])
        else:
            out.append([float(p.residual) for p in queue])
    return out


def run_walkthrough(
    config: SwitchConfig,
    backlog: Mapping[int, Sequence[float]],
    arrivals: Sequence[Packet],
    policy_names: Sequence[str],
) -> Walkthrough:
    """Offer the same slot to each policy on its own pre-filled switch.

    ``backlog`` maps port -> per-packet markers: packet *values* for the
    value model, ignored (the port's work is used) for the processing
    model — each entry seeds one packet.
    """
    if not policy_names:
        raise ConfigError("walkthrough needs at least one policy")
    from repro.core.config import QueueDiscipline

    by_value = config.discipline is QueueDiscipline.PRIORITY
    slots: Dict[str, PolicySlot] = {}
    for name in policy_names:
        policy = make_policy(name)
        switch = SharedMemorySwitch(config)
        for port, markers in backlog.items():
            for marker in markers:
                packet = Packet(
                    port=port,
                    work=config.work_of(port),
                    value=float(marker) if by_value else 1.0,
                )
                switch.apply(packet, ACCEPT)

        record = PolicySlot(policy_name=name)
        record.queues_before = _snapshot(switch, by_value)
        for packet in arrivals:
            decision = switch.offer(packet, policy)
            record.verdicts.append(
                Verdict(
                    port=packet.port,
                    work=packet.work,
                    value=packet.value,
                    action=decision.action,
                    victim_port=decision.victim_port,
                )
            )
        record.queues_after_arrivals = _snapshot(switch, by_value)
        done = switch.transmission_phase()
        record.transmitted_ports = [p.port for p in done]
        record.transmitted_value = sum(p.value for p in done)
        record.queues_end = _snapshot(switch, by_value)
        slots[name] = record
    return Walkthrough(config=config, slots=slots)
