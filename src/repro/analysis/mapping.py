"""Executable certificate checker for Theorem 7 (LWD is 2-competitive).

The paper's main proof (Fig. 3 + Lemma 8) charges every packet the
clairvoyant OPT transmits to a packet LWD transmits, with at most two OPT
packets per LWD packet. The argument only uses one property of OPT — it
never pushes out — so the same mapping certifies ``REF <= 2 * LWD`` for
*any* non-push-out reference schedule REF.

This module runs LWD and a non-push-out reference policy in lock-step over
a trace and maintains the proof's mapping *online*, exactly following the
rules of Fig. 3:

* **A0 (same queue)** — the i-th *eligible* REF packet of queue ``j`` is
  mapped to the i-th LWD packet of queue ``j``. We keep this alignment
  implicit (it is fully determined by queue contents) and verify its
  latency claim — ``lat(ref) >= lat(lwd)`` position by position — after
  every event.
* **A1 (other queue)** — an eligible REF packet beyond the A0 alignment
  holds a persistent assignment to some LWD packet with no other A1 image
  and no larger latency. Assignments are created when a packet becomes
  *excess* (REF accepts beyond the alignment, or an LWD push-out shortens
  the alignment) — the latter is the proof's **A2** case — and cleared
  when the alignment grows back over the packet (**A3**).
* **T0 (transmission)** — when LWD transmits a packet, its images (the
  A0-aligned head partner and its A1 holder, if any) become *ineligible*:
  permanently credited to that LWD packet.

Every violation the checker can raise corresponds to a step of Lemma 8
that would not go through on this run. Two severities are reported
separately:

* *accounting* — the theorem's conclusion itself fails (an LWD packet
  charged three REF packets, an uncredited REF transmission, cumulative
  ``REF > 2 * LWD``). **Never observed**, on any trace, against any
  reference.
* *lemma* — an intermediate latency invariant of Lemma 8 fails under our
  reading. Against the proofs' own clairvoyant OPT strategies the lemma
  verifies completely; against *other* non-push-out references (e.g.
  NEST) latency inversions do occur. The mechanism: LWD may push out a
  partially-processed packet (a singleton queue whose residual work still
  tops every other queue), then later re-admit a fresh full-work packet
  to that port, while the reference kept — and kept processing — its old
  copy; the re-established A0 pair then has ``lat(REF) < lat(LWD)``,
  which the proof's case (4) asserts cannot happen. The 2x accounting
  survives these inversions in every run we have tried, so the finding
  concerns the written proof's invariant, not (as far as our experiments
  can see) the theorem. EXPERIMENTS.md discusses this in detail.

Restrictions inherited from the proof's setting: FIFO discipline and
speedup ``C = 1`` (one processing cycle per port per slot).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.core.config import QueueDiscipline, SwitchConfig
from repro.core.decisions import Action
from repro.core.errors import ConfigError, PolicyError
from repro.core.packet import Packet
from repro.core.switch import SharedMemorySwitch
from repro.policies.base import Policy
from repro.policies.processing import LWD
from repro.traffic.trace import Trace


@dataclass
class MappingViolation:
    """One failed step of the Lemma 8 argument on a concrete run.

    ``severity`` distinguishes the two layers of the proof:

    * ``"lemma"`` — a latency invariant of Lemma 8 did not hold at this
      step under our reading (observed only against *non-OPT* reference
      schedules; see :class:`MappingReport.lemma_clean`);
    * ``"accounting"`` — the 2x charging itself failed (an LWD packet
      charged three REF packets, a REF transmission with no image to
      charge, or the cumulative bound broken). Never observed.
    """

    slot: int
    rule: str
    detail: str
    severity: str = "accounting"

    def __str__(self) -> str:
        return (
            f"slot {self.slot}: [{self.rule}/{self.severity}] {self.detail}"
        )


@dataclass
class MappingReport:
    """Outcome of a certificate run."""

    slots: int
    lwd_transmitted: int
    ref_transmitted: int
    a1_assignments: int
    violations: List[MappingViolation] = field(default_factory=list)

    @property
    def certified(self) -> bool:
        """Whether the 2x *accounting* held throughout (Theorem 7's
        conclusion)."""
        return not [
            v for v in self.violations if v.severity == "accounting"
        ]

    @property
    def lemma_clean(self) -> bool:
        """Whether every intermediate invariant of Lemma 8 also held
        (the full proof mechanism, not just its conclusion)."""
        return not self.violations

    @property
    def charge_ratio(self) -> float:
        if self.lwd_transmitted == 0:
            return 0.0 if self.ref_transmitted == 0 else float("inf")
        return self.ref_transmitted / self.lwd_transmitted

    def summary(self) -> str:
        if self.lemma_clean:
            status = "CERTIFIED (lemma clean)"
        elif self.certified:
            warnings = len(self.violations)
            status = f"CERTIFIED ({warnings} lemma warnings)"
        else:
            status = f"{len(self.violations)} VIOLATIONS"
        return (
            f"mapping certificate over {self.slots} slots: {status}; "
            f"REF={self.ref_transmitted}, LWD={self.lwd_transmitted} "
            f"(charge {self.charge_ratio:.3f} <= 2)"
        )


class MappingChecker:
    """Lock-step LWD-vs-reference runner maintaining the Fig. 3 mapping."""

    def __init__(self, config: SwitchConfig) -> None:
        if config.discipline is not QueueDiscipline.FIFO:
            raise ConfigError(
                "the Theorem 7 mapping is defined for the FIFO "
                "processing model"
            )
        if config.speedup != 1:
            raise ConfigError(
                "the Theorem 7 proof assumes one cycle per port per slot "
                "(C = 1)"
            )
        self.config = config

    # ------------------------------------------------------------------

    def run(
        self,
        trace: Trace,
        ref_policy: Policy,
        *,
        drain: bool = True,
        max_violations: int = 10,
    ) -> MappingReport:
        """Replay ``trace`` through LWD and ``ref_policy``, verifying the
        mapping invariants after every event.

        ``ref_policy`` must be non-push-out (the proof's only assumption
        about OPT); push-out references are rejected.
        """
        if getattr(ref_policy, "is_push_out", False):
            raise ConfigError(
                "the mapping argument assumes a non-push-out reference; "
                f"{getattr(ref_policy, 'name', ref_policy)!r} pushes out"
            )
        lwd_switch = SharedMemorySwitch(self.config)
        ref_switch = SharedMemorySwitch(self.config)
        lwd_policy = LWD()

        # Persistent A1 assignments: ref packet seq -> LWD packet seq, and
        # the inverse (each LWD packet holds at most one A1 image).
        a1_of_ref: Dict[int, int] = {}
        a1_holder: Dict[int, int] = {}
        # Refs locked to an already-transmitted LWD packet.
        ineligible: Set[int] = set()
        # Final charges: LWD packet seq -> ref packet seqs credited.
        charges: Dict[int, Set[int]] = {}
        a1_total = 0

        violations: List[MappingViolation] = []
        slot_now = 0

        def violate(
            rule: str, detail: str, severity: str = "accounting"
        ) -> None:
            if len(violations) < max_violations:
                violations.append(
                    MappingViolation(slot_now, rule, detail, severity)
                )

        # -- latency helpers (C = 1, per-port FIFO) ---------------------

        def latencies(switch: SharedMemorySwitch, port: int) -> List[int]:
            """lat of each packet in queue order: head residual, then one
            full work term per predecessor."""
            queue = switch.queues[port]
            out: List[int] = []
            work = self.config.work_of(port)
            for idx, packet in enumerate(queue):
                if idx == 0:
                    out.append(packet.residual)
                else:
                    out.append(out[0] + idx * work)
            return out

        def eligible_refs(port: int) -> List[Packet]:
            return [
                p for p in ref_switch.queues[port]
                if p.seq not in ineligible
            ]

        def eligible_latencies(port: int) -> List[int]:
            lats = latencies(ref_switch, port)
            out = []
            for packet, lat in zip(ref_switch.queues[port], lats):
                if packet.seq not in ineligible:
                    out.append(lat)
            return out

        def lwd_packet_lat(seq: int) -> Optional[int]:
            for port in range(self.config.n_ports):
                lats = latencies(lwd_switch, port)
                for packet, lat in zip(lwd_switch.queues[port], lats):
                    if packet.seq == seq:
                        return lat
            return None

        # -- A1 maintenance ---------------------------------------------

        def assign_a1(ref_seq: int, ref_lat: int) -> None:
            """Find an LWD packet with no A1 image and latency <= the
            ref's; take the largest such latency (leaves tight candidates
            for tighter future constraints)."""
            nonlocal a1_total
            best_seq: Optional[int] = None
            best_lat = -1
            for port in range(self.config.n_ports):
                lats = latencies(lwd_switch, port)
                for packet, lat in zip(lwd_switch.queues[port], lats):
                    if packet.seq in a1_holder:
                        continue
                    if lat <= ref_lat and lat > best_lat:
                        best_lat = lat
                        best_seq = packet.seq
            if best_seq is None:
                violate(
                    "A1",
                    f"no unassigned LWD packet with latency <= {ref_lat} "
                    f"for excess REF packet {ref_seq}",
                    severity="lemma",
                )
                return
            a1_of_ref[ref_seq] = best_seq
            a1_holder[best_seq] = ref_seq
            a1_total += 1

        def clear_a1(ref_seq: int) -> None:
            image = a1_of_ref.pop(ref_seq, None)
            if image is not None:
                a1_holder.pop(image, None)

        def sync_excess(port: int) -> None:
            """Ensure exactly the refs beyond the A0 alignment hold A1
            assignments (creates missing ones, clears covered ones)."""
            refs = eligible_refs(port)
            ref_lats = eligible_latencies(port)
            aligned = len(lwd_switch.queues[port])
            for idx, packet in enumerate(refs):
                if idx < aligned:
                    clear_a1(packet.seq)  # rule A3
                elif packet.seq not in a1_of_ref:
                    assign_a1(packet.seq, ref_lats[idx])

        # -- invariant verification ---------------------------------------

        def verify_alignment() -> None:
            """Lemma 8's latency claims for every current A0/A1 pair."""
            for port in range(self.config.n_ports):
                lwd_lats = latencies(lwd_switch, port)
                ref_lats = eligible_latencies(port)
                for idx in range(min(len(lwd_lats), len(ref_lats))):
                    if ref_lats[idx] < lwd_lats[idx]:
                        violate(
                            "A0",
                            f"queue {port} position {idx}: REF latency "
                            f"{ref_lats[idx]} < LWD latency "
                            f"{lwd_lats[idx]}",
                            severity="lemma",
                        )
            for ref_seq, lwd_seq in a1_of_ref.items():
                lwd_lat = lwd_packet_lat(lwd_seq)
                if lwd_lat is None:
                    continue  # image transmitted; handled by T0 locking
                ref_lat = None
                for port in range(self.config.n_ports):
                    lats = latencies(ref_switch, port)
                    for packet, lat in zip(ref_switch.queues[port], lats):
                        if packet.seq == ref_seq:
                            ref_lat = lat
                            break
                    if ref_lat is not None:
                        break
                if ref_lat is not None and ref_lat < lwd_lat:
                    violate(
                        "A1",
                        f"A1 pair ref {ref_seq} (lat {ref_lat}) < "
                        f"lwd {lwd_seq} (lat {lwd_lat})",
                        severity="lemma",
                    )

        def charge(lwd_seq: int, ref_seq: int, rule: str) -> None:
            bucket = charges.setdefault(lwd_seq, set())
            bucket.add(ref_seq)
            if len(bucket) > 2:
                violate(
                    "T0",
                    f"LWD packet {lwd_seq} charged {len(bucket)} REF "
                    f"packets (> 2) via {rule}",
                )

        # -- the lock-step run --------------------------------------------

        ref_tx_total = 0
        lwd_tx_total = 0
        horizon = trace.n_slots
        if drain:
            horizon += self.config.buffer_size * self.config.max_work + 1

        for slot_now in range(horizon):
            arrivals: Sequence[Packet] = (
                trace.slots[slot_now] if slot_now < trace.n_slots else ()
            )
            # Arrival phase, one packet at a time against both systems.
            for template in arrivals:
                port = template.port
                # LWD side: observe push-outs for rule A2.
                lwd_decision = lwd_policy.admit(lwd_switch.view, template)
                victim_seq: Optional[int] = None
                if lwd_decision.action is Action.PUSH_OUT:
                    victim_seq = lwd_switch.queues[
                        lwd_decision.victim_port
                    ].peek_tail().seq
                lwd_switch.metrics.record_arrival(template)
                lwd_switch.apply(template, lwd_decision)

                if victim_seq is not None:
                    # Rule A2: images of the evicted packet lose it.
                    holder_ref = a1_holder.pop(victim_seq, None)
                    if holder_ref is not None:
                        a1_of_ref.pop(holder_ref, None)
                    # The A0-aligned partner (if it existed) is now excess;
                    # sync below re-assigns it by A1.

                # REF side.
                ref_decision = ref_policy.admit(ref_switch.view, template)
                if ref_decision.action is Action.PUSH_OUT:
                    raise PolicyError(
                        "reference policy pushed out despite claiming "
                        "non-push-out"
                    )
                ref_switch.metrics.record_arrival(template)
                ref_switch.apply(template, ref_decision)

                # Re-establish A0/A1 on every affected queue.
                affected = {port}
                if lwd_decision.action is Action.PUSH_OUT:
                    affected.add(lwd_decision.victim_port)
                for affected_port in affected:
                    sync_excess(affected_port)
                verify_alignment()

            # Transmission phase: LWD ports first, then REF (the proof's
            # processing order), port by port.
            lwd_done = lwd_switch.transmission_phase()
            for packet in lwd_done:
                # Rule T0: lock this packet's images.
                refs = eligible_refs(packet.port)
                if refs:
                    partner = refs[0]
                    # The A0 partner is the head-aligned eligible ref; it
                    # becomes ineligible, credited to this LWD packet.
                    ineligible.add(partner.seq)
                    clear_a1(partner.seq)  # a head partner is A0, not A1
                    charge(packet.seq, partner.seq, "A0")
                holder_ref = a1_holder.pop(packet.seq, None)
                if holder_ref is not None:
                    a1_of_ref.pop(holder_ref, None)
                    ineligible.add(holder_ref)
                    charge(packet.seq, holder_ref, "A1")
                sync_excess(packet.port)
            lwd_tx_total += len(lwd_done)

            lwd_tx_ports = {p.port for p in lwd_done}
            ref_done = ref_switch.transmission_phase()
            for packet in ref_done:
                if packet.seq in ineligible:
                    ineligible.discard(packet.seq)
                    continue  # already credited at lock time
                # Lemma 8 (cases 1/2): an *eligible* REF transmission
                # coincides with an LWD transmission on the same port. If
                # it does not (possible only after a lemma-layer latency
                # inversion), fall back to charging the packet's current
                # image so the accounting can still be audited.
                if packet.port not in lwd_tx_ports:
                    violate(
                        "T0",
                        f"REF transmitted eligible packet {packet.seq} on "
                        f"port {packet.port} while LWD transmitted on "
                        f"ports {sorted(lwd_tx_ports)}",
                        severity="lemma",
                    )
                image_seq: Optional[int] = None
                if len(lwd_switch.queues[packet.port]) > 0:
                    image_seq = lwd_switch.queues[packet.port].peek_head().seq
                elif packet.seq in a1_of_ref:
                    image_seq = a1_of_ref[packet.seq]
                if image_seq is None:
                    violate(
                        "T0",
                        f"REF packet {packet.seq} transmitted with no "
                        "image to charge",
                    )
                else:
                    clear_a1(packet.seq)
                    charge(image_seq, packet.seq, "A0")
            ref_tx_total += len(ref_done)

            if lwd_tx_total and ref_tx_total > 2 * lwd_tx_total:
                violate(
                    "GLOBAL",
                    f"cumulative REF {ref_tx_total} > 2 x LWD "
                    f"{lwd_tx_total}",
                )

            verify_alignment()
            if (
                drain
                and slot_now >= trace.n_slots
                and lwd_switch.occupancy == 0
                and ref_switch.occupancy == 0
            ):
                break

        return MappingReport(
            slots=slot_now + 1,
            lwd_transmitted=lwd_tx_total,
            ref_transmitted=ref_tx_total,
            a1_assignments=a1_total,
            violations=violations,
        )


def certify_lwd(
    trace: Trace,
    config: SwitchConfig,
    ref_policy: Policy,
    **kwargs,
) -> MappingReport:
    """Convenience wrapper: run the Theorem 7 certificate on one trace."""
    return MappingChecker(config).run(trace, ref_policy, **kwargs)
