"""Lock-step streaming competitive measurement (paper-scale runs).

:func:`repro.analysis.competitive.measure_competitive_ratio` replays a
materialized trace twice (once per system). For paper-scale horizons the
trace itself is the memory bottleneck, so this runner consumes a
*streaming* workload (an iterator of per-slot bursts) exactly once,
feeding the online policy and the OPT surrogate the same burst in
lock-step. Memory is O(switch state); 2*10^6-slot runs are just time.

Checkpoints (cumulative ratio every ``checkpoint_every`` slots) come for
free from the single pass, so long runs double as convergence profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.analysis.competitive import PolicySystem
from repro.analysis.convergence import ConvergencePoint
from repro.core.config import QueueDiscipline, SwitchConfig
from repro.core.errors import ConfigError
from repro.core.metrics import SwitchMetrics
from repro.core.packet import Packet
from repro.core.switch import AdmissionPolicy
from repro.opt.surrogate import System, make_surrogate


@dataclass
class StreamResult:
    """Outcome of one streaming lock-step run."""

    policy_name: str
    slots: int
    by_value: bool
    alg_metrics: SwitchMetrics
    opt_metrics: SwitchMetrics
    checkpoints: List[ConvergencePoint] = field(default_factory=list)

    @property
    def alg_objective(self) -> float:
        return self.alg_metrics.objective(self.by_value)

    @property
    def opt_objective(self) -> float:
        return self.opt_metrics.objective(self.by_value)

    @property
    def ratio(self) -> float:
        if self.alg_objective <= 0:
            return float("inf") if self.opt_objective > 0 else 1.0
        return self.opt_objective / self.alg_objective

    def summary(self) -> str:
        return (
            f"{self.policy_name}: ratio={self.ratio:.4f} over "
            f"{self.slots} slots (ALG={self.alg_objective:.1f}, "
            f"OPT={self.opt_objective:.1f})"
        )


def stream_competitive(
    policy: AdmissionPolicy,
    config: SwitchConfig,
    slot_stream: Iterable[List[Packet]],
    *,
    by_value: Optional[bool] = None,
    flush_every: Optional[int] = None,
    checkpoint_every: Optional[int] = None,
) -> StreamResult:
    """Feed one streaming workload to ALG and the OPT surrogate lock-step.

    Parameters mirror :func:`~repro.analysis.competitive.
    measure_competitive_ratio`; ``slot_stream`` is consumed exactly once,
    so pass a fresh generator (e.g. from :mod:`repro.traffic.streaming`).
    """
    if by_value is None:
        by_value = config.discipline is QueueDiscipline.PRIORITY
    if flush_every is not None and flush_every < 1:
        raise ConfigError(f"flush_every must be >= 1, got {flush_every}")
    if checkpoint_every is not None and checkpoint_every < 1:
        raise ConfigError(
            f"checkpoint_every must be >= 1, got {checkpoint_every}"
        )

    alg: System = PolicySystem(config, policy)
    opt: System = make_surrogate(config, by_value)
    checkpoints: List[ConvergencePoint] = []
    slots = 0
    for burst in slot_stream:
        alg.run_slot(burst)
        opt.run_slot(burst)
        slots += 1
        if flush_every is not None and slots % flush_every == 0:
            alg.flush()
            opt.flush()
        if checkpoint_every is not None and slots % checkpoint_every == 0:
            checkpoints.append(
                ConvergencePoint(
                    slots=slots,
                    alg_objective=alg.metrics.objective(by_value),
                    opt_objective=opt.metrics.objective(by_value),
                )
            )
    return StreamResult(
        policy_name=getattr(policy, "name", type(policy).__name__),
        slots=slots,
        by_value=by_value,
        alg_metrics=alg.metrics,
        opt_metrics=opt.metrics,
        checkpoints=checkpoints,
    )
