"""Competitive-ratio measurement: drive ALG and OPT over the same trace.

An algorithm ALG is alpha-competitive when, for every arrival sequence, its
objective is at least ``1/alpha`` of the optimal offline objective. The
empirical analogue, used throughout the paper's Section V, replays a single
trace through both an online policy and an OPT reference and reports

    ``ratio = OPT objective / ALG objective  (>= 1 means ALG is worse)``.

Both systems see identical arrivals; they differ only in admission (and,
for the single-PQ surrogate, buffer architecture). Periodic *flushouts*
(Section V-A) clear both buffers every ``flush_every`` slots so that
transient backlog cannot dominate long runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.core.config import QueueDiscipline, SwitchConfig
from repro.core.errors import ConfigError
from repro.core.metrics import SwitchMetrics
from repro.core.packet import Packet
from repro.core.switch import AdmissionPolicy, SharedMemorySwitch
from repro.obs.observer import SlotObserver
from repro.opt.scripted import ScriptedPolicy
from repro.opt.surrogate import System, make_surrogate
from repro.traffic.columnar import ColumnarTrace
from repro.traffic.trace import Trace

#: Any replayable arrival sequence: object slots or CSR columns.
AnyTrace = Union[Trace, ColumnarTrace]


#: Engine identifiers accepted by the ``engine=`` seam. ``reference``
#: is the per-packet object engine (the oracle); ``vectorized`` is the
#: columnar batch-slot engine of :mod:`repro.core.columnar`, decision-
#: identical by contract (see docs/VECTORIZED.md).
ENGINES = ("reference", "vectorized")


class PolicySystem:
    """A shared-memory switch driven by a buffer-management policy.

    Adapts the (switch, policy) pair to the :class:`~repro.opt.surrogate.
    System` interface shared with the OPT surrogates, so the runner can
    treat every contender uniformly.

    ``engine`` selects the simulation engine: ``"reference"`` (the
    per-packet oracle; ``fast_path`` picks its selector mode) or
    ``"vectorized"`` (the columnar batch-slot engine, where
    ``fast_path`` is ignored — victim selection is always the kernel
    or the policy's naive selector over the columnar view).
    """

    def __init__(
        self,
        config: SwitchConfig,
        policy: AdmissionPolicy,
        *,
        fast_path: bool = True,
        observer: Optional[SlotObserver] = None,
        engine: str = "reference",
    ) -> None:
        if engine == "vectorized":
            from repro.core.columnar import VectorizedSwitch

            self.switch: Union[
                SharedMemorySwitch, VectorizedSwitch
            ] = VectorizedSwitch(config, observer=observer)
        elif engine == "reference":
            self.switch = SharedMemorySwitch(
                config, fast_path=fast_path, observer=observer
            )
        else:
            raise ConfigError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        self.engine = engine
        self.policy = policy
        if engine == "vectorized":
            # Advertised as an instance attribute only on the engine
            # that has a columnar ingestion path, so the runner's
            # ``getattr`` probe routes reference systems through the
            # materialized object loop.
            self.run_slot_columns = self._run_slot_columns_vectorized

    def _run_slot_columns_vectorized(
        self,
        ports: Sequence[int],
        works: Sequence[int],
        values: Sequence[float],
        arrivals: Optional[Sequence[int]],
        lo: int,
        hi: int,
    ) -> List[Packet]:
        return self.switch.run_slot_columns(  # type: ignore[union-attr]
            self.policy, ports, works, values, arrivals, lo, hi
        )

    def attach_observer(self, observer: Optional[SlotObserver]) -> None:
        """Forward to the switch's nullable observer slot."""
        self.switch.attach_observer(observer)

    @property
    def metrics(self) -> SwitchMetrics:
        return self.switch.metrics

    @property
    def backlog(self) -> int:
        return self.switch.occupancy

    def run_slot(self, arrivals: Sequence[Packet]) -> List[Packet]:
        return self.switch.run_slot(arrivals, self.policy)

    def fast_forward(self, n_slots: int) -> None:
        self.switch.fast_forward(n_slots)

    def set_port_state(self, port: int, up: bool) -> int:
        """Forward a churn event to the switch; returns reclaimed count."""
        return self.switch.set_port_state(port, up)

    def flush(self) -> int:
        return self.switch.flush()

    def check_invariants(self) -> None:
        self.switch.check_invariants()


@dataclass(frozen=True)
class CompetitiveResult:
    """Outcome of one ALG-vs-OPT replay."""

    policy_name: str
    opt_name: str
    alg_objective: float
    opt_objective: float
    by_value: bool
    alg_metrics: SwitchMetrics
    opt_metrics: SwitchMetrics

    @property
    def ratio(self) -> float:
        """Empirical competitive ratio ``OPT / ALG`` (inf when ALG idle)."""
        if self.alg_objective <= 0:
            return float("inf") if self.opt_objective > 0 else 1.0
        return self.opt_objective / self.alg_objective

    def summary(self) -> str:
        return (
            f"{self.policy_name}: ratio={self.ratio:.4f} "
            f"(ALG={self.alg_objective:.1f}, {self.opt_name}="
            f"{self.opt_objective:.1f})"
        )


def invariant_check_interval() -> int:
    """The opt-in self-check cadence from ``REPRO_CHECK_INVARIANTS``.

    Unset, empty, or ``0`` disables checking (returns 0). ``1`` enables it
    at the default cadence of every 256 slots; any larger integer is used
    as the cadence directly. Invariant scans are O(B + n) each, which is
    why long runs opt in at an interval instead of paying per slot.
    """
    raw = os.environ.get("REPRO_CHECK_INVARIANTS", "").strip()
    if not raw:
        return 0
    try:
        interval = int(raw)
    except ValueError:
        raise ConfigError(
            f"REPRO_CHECK_INVARIANTS must be an integer, got {raw!r}"
        ) from None
    if interval <= 0:
        return 0
    return 256 if interval == 1 else interval


def run_system(
    system: System,
    trace: AnyTrace,
    *,
    flush_every: Optional[int] = None,
    drain_slots: int = 0,
    observer: Optional[SlotObserver] = None,
) -> SwitchMetrics:
    """Replay a trace through one system, with optional flushouts/drain.

    Stretches of slots with no arrivals while the buffer is empty are
    fast-forwarded in one step on systems that support it (the switch is
    a fixed point of such slots, so the replay is observably identical;
    an attached observer sees the stretch as one explicit idle event).
    Setting ``REPRO_CHECK_INVARIANTS`` runs the system's self-checks
    every K slots (see :func:`invariant_check_interval`). Passing
    ``observer`` attaches a :class:`~repro.obs.observer.SlotObserver`
    for the duration of the run; the system must expose
    ``attach_observer`` (the OPT surrogates do not).

    A :class:`~repro.traffic.columnar.ColumnarTrace` is fed straight
    from its columns when the system exposes ``run_slot_columns`` (the
    vectorized engines); otherwise — or when the trace carries
    scripted-OPT tags, which need real packets — it is materialized
    once and replayed through the object loop. Flushout cadence, idle
    fast-forward, drain, and invariant checks are identical on both
    paths, so the produced metrics are too.
    """
    if flush_every is not None and flush_every < 1:
        raise ConfigError(f"flush_every must be >= 1, got {flush_every}")
    if observer is not None:
        attach = getattr(system, "attach_observer", None)
        if attach is None:
            raise ConfigError(
                f"{type(system).__name__} does not support observers"
            )
        attach(observer)
    check_every = invariant_check_interval()
    if check_every and not hasattr(system, "check_invariants"):
        check_every = 0
    fast_forward = getattr(system, "fast_forward", None)

    # Port churn: events apply at the start of their slot, before that
    # slot's arrivals, on systems that support them. ``or None``
    # normalizes an empty mapping so static traces skip the machinery.
    port_events = getattr(trace, "port_events", None) or None
    set_port_state = None
    if port_events is not None:
        set_port_state = getattr(system, "set_port_state", None)
        if set_port_state is None:
            raise ConfigError(
                f"{type(system).__name__} does not support port churn "
                "(trace carries port_events)"
            )

    run_cols = getattr(system, "run_slot_columns", None)
    if (
        isinstance(trace, ColumnarTrace)
        and run_cols is not None
        and trace.opts is None
    ):
        offsets = trace.offsets
        ports = trace.ports
        works = trace.works
        values = trace.values
        if getattr(system, "prefers_array_columns", False):
            arrays = trace.array_columns()
            if arrays is not None:
                # Array-batching consumers (the vectorized OPT
                # surrogates) get the trace's cached ndarray view;
                # the per-packet kernels keep the faster-to-index
                # lists. Same packets either way.
                ports, works, values = arrays
        arrs = trace.arrivals
        n_slots = trace.n_slots
        slot = 0
        while slot < n_slots:
            if port_events is not None:
                events = port_events.get(slot)
                if events is not None:
                    assert set_port_state is not None
                    for event in events:
                        set_port_state(event.port, event.up)
            lo = offsets[slot]
            hi = offsets[slot + 1]
            if lo == hi and fast_forward is not None and system.backlog == 0:
                end = slot + 1
                while (
                    end < n_slots
                    and offsets[end + 1] == offsets[end]
                    and (port_events is None or end not in port_events)
                ):
                    end += 1
                fast_forward(end - slot)
                slot = end
                continue
            run_cols(ports, works, values, arrs, lo, hi)
            if flush_every is not None and (slot + 1) % flush_every == 0:
                system.flush()
            if check_every and (slot + 1) % check_every == 0:
                system.check_invariants()
            slot += 1
        return _drain(system, drain_slots, check_every)

    slots = trace.slots
    n_slots = len(slots)
    slot = 0
    while slot < n_slots:
        if port_events is not None:
            events = port_events.get(slot)
            if events is not None:
                assert set_port_state is not None
                for event in events:
                    set_port_state(event.port, event.up)
        arrivals = slots[slot]
        if not arrivals and fast_forward is not None and system.backlog == 0:
            # Skip the whole idle stretch at once. Any flushouts inside
            # it would clear an empty buffer (a metrics no-op), so
            # jumping over their boundaries changes nothing; the scan
            # stops short of the next churn-event slot.
            end = slot + 1
            while (
                end < n_slots
                and not slots[end]
                and (port_events is None or end not in port_events)
            ):
                end += 1
            fast_forward(end - slot)
            slot = end
            continue
        system.run_slot(arrivals)
        if flush_every is not None and (slot + 1) % flush_every == 0:
            system.flush()
        if check_every and (slot + 1) % check_every == 0:
            system.check_invariants()
        slot += 1
    return _drain(system, drain_slots, check_every)


def _drain(
    system: System, drain_slots: int, check_every: int
) -> SwitchMetrics:
    """Run empty slots until the buffer empties (bounded), then report."""
    drained = 0
    while system.backlog > 0 and drained < drain_slots:
        system.run_slot(())
        drained += 1
        if check_every and drained % check_every == 0:
            system.check_invariants()
    return system.metrics


def measure_competitive_ratio(
    policy: AdmissionPolicy,
    trace: AnyTrace,
    config: SwitchConfig,
    *,
    by_value: Optional[bool] = None,
    opt: Union[str, System] = "surrogate",
    flush_every: Optional[int] = None,
    drain: bool = False,
    registry=None,
    engine: str = "reference",
) -> CompetitiveResult:
    """Replay ``trace`` through ``policy`` and an OPT reference.

    Parameters
    ----------
    policy:
        The online buffer-management policy under test.
    trace:
        The common arrival sequence.
    config:
        Switch configuration shared by ALG and (for scripted OPT) OPT.
    by_value:
        Objective selector; defaults from the configured discipline
        (priority queues imply the value objective).
    opt:
        ``"surrogate"`` — the paper's single priority queue with ``n*C``
        cores (Section V-A); ``"scripted"`` — replay the trace's
        ``opt_accept`` tags on a normal switch (adversarial scenarios);
        or any pre-built :class:`~repro.opt.surrogate.System`.
    flush_every:
        Clear both buffers every this many slots (the paper's flushouts).
    drain:
        After the trace, run empty slots until both systems empty (bounded
        by ``B * k`` slots), crediting buffered packets.
    registry:
        Optional :class:`~repro.obs.counters.CounterRegistry`; when
        given, the ALG replay is charged to the ``policy_run`` stage and
        the OPT replay to ``opt_run`` — the split the sweep engine
        surfaces through :class:`~repro.analysis.sweep.SweepStats`.
    engine:
        Simulation engine (``"reference"`` or ``"vectorized"``) for the
        ALG side *and* the OPT-PQ surrogate (which has an array-backed
        variant with the same decisions). The scripted replay stays on
        the reference engine. Decision parity between engines means the
        measured ratio is engine-independent by contract, so ``engine``
        is deliberately excluded from cache keys and journal identity.
    """
    if by_value is None:
        by_value = config.discipline is QueueDiscipline.PRIORITY

    if isinstance(opt, str):
        if opt == "surrogate":
            opt_system: System = make_surrogate(
                config, by_value, engine=engine
            )
            opt_name = "OPT-PQ"
        elif opt == "scripted":
            opt_system = PolicySystem(config, ScriptedPolicy())
            opt_name = "Scripted-OPT"
        else:
            raise ConfigError(f"unknown OPT reference {opt!r}")
    else:
        opt_system = opt
        opt_name = type(opt).__name__

    drain_slots = config.buffer_size * config.max_work if drain else 0

    alg_system = PolicySystem(config, policy, engine=engine)
    if registry is None:
        alg_metrics = run_system(
            alg_system, trace,
            flush_every=flush_every, drain_slots=drain_slots,
        )
        opt_metrics = run_system(
            opt_system, trace,
            flush_every=flush_every, drain_slots=drain_slots,
        )
    else:
        with registry.timer("policy_run"):
            alg_metrics = run_system(
                alg_system, trace,
                flush_every=flush_every, drain_slots=drain_slots,
            )
        with registry.timer("opt_run"):
            opt_metrics = run_system(
                opt_system, trace,
                flush_every=flush_every, drain_slots=drain_slots,
            )

    return CompetitiveResult(
        policy_name=getattr(policy, "name", type(policy).__name__),
        opt_name=opt_name,
        alg_objective=alg_metrics.objective(by_value),
        opt_objective=opt_metrics.objective(by_value),
        by_value=by_value,
        alg_metrics=alg_metrics,
        opt_metrics=opt_metrics,
    )


def run_scenario(scenario, drain: bool = False) -> CompetitiveResult:
    """Execute an adversarial scenario against its target policy.

    Convenience wrapper: builds the scenario's target policy by name,
    replays its trace against the scripted clairvoyant OPT, and returns
    the measured ratio (to compare with ``scenario.predicted_ratio``).

    ``drain`` defaults to off: the proofs count transmissions over the
    construction's period, and round lengths are engineered so OPT's
    buffer empties while the target policy is left holding the packets it
    mis-admitted — crediting those through a drain phase would understate
    the bound (in steady state the next round's burst reclaims that
    buffer space anyway).
    """
    from repro.policies import make_policy  # local import to avoid cycles

    policy = make_policy(scenario.target_policy)
    return measure_competitive_ratio(
        policy,
        scenario.trace,
        scenario.config,
        by_value=scenario.by_value,
        opt="scripted",
        drain=drain,
    )
