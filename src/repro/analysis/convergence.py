"""Horizon-convergence analysis: how long must a simulation run?

The paper simulates 2*10^6 time slots; this repository defaults to a few
thousand. This module justifies that substitution empirically: it replays
one trace through ALG and OPT simultaneously, sampling the cumulative
competitive ratio at checkpoints, so the knee of the convergence curve is
visible. With periodic flushouts the ratio typically stabilizes within a
couple of flush periods — far below the paper's horizon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.competitive import PolicySystem
from repro.core.config import QueueDiscipline, SwitchConfig
from repro.core.errors import ConfigError
from repro.core.switch import AdmissionPolicy
from repro.opt.surrogate import System, make_surrogate
from repro.traffic.trace import Trace


@dataclass(frozen=True)
class ConvergencePoint:
    """Cumulative ratio after a prefix of the trace."""

    slots: int
    alg_objective: float
    opt_objective: float

    @property
    def ratio(self) -> float:
        if self.alg_objective <= 0:
            return float("inf") if self.opt_objective > 0 else 1.0
        return self.opt_objective / self.alg_objective


@dataclass
class ConvergenceProfile:
    """The full checkpoint series, with convergence diagnostics."""

    policy_name: str
    points: List[ConvergencePoint]

    @property
    def final_ratio(self) -> float:
        return self.points[-1].ratio if self.points else 1.0

    @property
    def prefix_supremum(self) -> float:
        """The maximal *cumulative* ratio over all checkpoints.

        Stronger than the final ratio: any charging argument in the style
        of Theorem 7 must cover every prefix of the run, so its constant
        is lower-bounded by this supremum. (Finite-prefix suprema can
        exceed the asymptotic competitive ratio — early slots are noisy —
        which is why convergence profiles sample many checkpoints.)
        """
        finite = [
            p.ratio for p in self.points if p.ratio != float("inf")
        ]
        return max(finite) if finite else 1.0

    def settled_after(self, tolerance: float = 0.02) -> Optional[int]:
        """First checkpoint from which every later cumulative ratio stays
        within ``tolerance`` (relative) of the final ratio; ``None`` if
        the series never settles."""
        final = self.final_ratio
        if final in (0.0, float("inf")):
            return None
        for idx, point in enumerate(self.points):
            tail = self.points[idx:]
            if all(
                abs(p.ratio - final) <= tolerance * final for p in tail
            ):
                return point.slots
        return None

    def format_table(self) -> str:
        lines = [f"{'slots':>8s} {'ratio':>8s}"]
        for point in self.points:
            lines.append(f"{point.slots:8d} {point.ratio:8.4f}")
        return "\n".join(lines)


def convergence_profile(
    policy: AdmissionPolicy,
    trace: Trace,
    config: SwitchConfig,
    *,
    checkpoints: Optional[Sequence[int]] = None,
    by_value: Optional[bool] = None,
    flush_every: Optional[int] = None,
    opt: str = "surrogate",
) -> ConvergenceProfile:
    """Cumulative competitive ratio vs an OPT reference over a trace.

    ``checkpoints`` defaults to ten evenly spaced prefixes. ALG and OPT
    advance slot-locked through the same trace, so each checkpoint is the
    exact ratio a run truncated there would have reported. ``opt`` is
    ``"surrogate"`` (the paper's single PQ) or ``"scripted"`` (replay the
    trace's ``opt_accept`` tags — for adversarial scenarios, where the
    prefix supremum lower-bounds any charging constant).
    """
    if by_value is None:
        by_value = config.discipline is QueueDiscipline.PRIORITY
    n_slots = trace.n_slots
    if checkpoints is None:
        step = max(1, n_slots // 10)
        checkpoints = list(range(step, n_slots + 1, step))
    marks = sorted(set(int(c) for c in checkpoints))
    if not marks or marks[0] < 1 or marks[-1] > n_slots:
        raise ConfigError(
            f"checkpoints must lie in [1, {n_slots}], got {marks[:3]}..."
        )

    alg: System = PolicySystem(config, policy)
    if opt == "surrogate":
        opt_system: System = make_surrogate(config, by_value)
    elif opt == "scripted":
        from repro.opt.scripted import ScriptedPolicy

        opt_system = PolicySystem(config, ScriptedPolicy())
    else:
        raise ConfigError(f"unknown OPT reference {opt!r}")
    points: List[ConvergencePoint] = []
    next_mark = 0
    for slot, arrivals in enumerate(trace, start=1):
        alg.run_slot(arrivals)
        opt_system.run_slot(arrivals)
        if flush_every is not None and slot % flush_every == 0:
            alg.flush()
            opt_system.flush()
        if next_mark < len(marks) and slot == marks[next_mark]:
            points.append(
                ConvergencePoint(
                    slots=slot,
                    alg_objective=alg.metrics.objective(by_value),
                    opt_objective=opt_system.metrics.objective(by_value),
                )
            )
            next_mark += 1
    return ConvergenceProfile(
        policy_name=getattr(policy, "name", type(policy).__name__),
        points=points,
    )
