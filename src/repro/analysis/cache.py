"""Content-addressed on-disk cache for sweep cell results.

Paper-scale Fig. 5 runs (2*10^6 slots, nine panels, multiple seeds) take
hours; interrupting one used to throw everything away. The cache stores
one :class:`~repro.analysis.sweep.SweepPoint` per file, addressed by the
SHA-256 of a canonical JSON payload describing *everything* that
determines the measurement:

* the full :class:`~repro.core.config.SwitchConfig` (buffer size, per-port
  work/value, speedup, discipline);
* a caller-supplied *workload token* naming the trace generator and its
  parameters (experiment id, model, ``n_slots``, load, ...);
* the policy name, the sweep parameter value, and the replication seed;
* the measurement knobs (``by_value``, ``flush_every``, ``drain``);
* a cache schema version and the package version, so results from an
  older engine are never silently reused after a semantic change.

Because simulations are deterministic given that payload, a hit can be
substituted for a fresh run without changing a single output byte — the
parallel/serial/cached determinism contract that
:mod:`repro.analysis.sweep` tests rely on. Entries are written atomically
(temp file + ``os.replace``) so concurrent sweeps sharing a cache
directory cannot observe torn files.

Integrity hardening (schema v2): every entry embeds the SHA-256 of its
measurement payload, verified on *every* read. An entry that fails the
checksum — bit rot, a torn write from a crashed pre-atomic writer, a
stray editor — is moved into ``<root>/quarantine/`` (never silently
reused, never silently deleted) and the lookup counts as a miss, so the
cell is simply recomputed. :meth:`SweepCache.verify` and
:meth:`SweepCache.gc` back the ``repro cache verify|gc`` subcommands.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional

from repro.core.config import SwitchConfig
from repro.core.errors import ConfigError

#: Bump when the cached payload layout or engine semantics change in a
#: way that invalidates previously stored measurements. v2 added the
#: per-entry payload checksum; v1 entries live at different addresses
#: (the version is part of the key) and are reaped by ``gc``.
CACHE_SCHEMA_VERSION = 2

#: Subdirectory of the cache root where corrupt entries are moved.
QUARANTINE_DIR = "quarantine"


def default_cache_dir() -> Path:
    """The CLI's default cache location.

    ``SHMEM_CACHE_DIR`` overrides; otherwise ``results/sweep-cache``
    under the current directory (``results/`` is already gitignored).
    """
    env = os.environ.get("SHMEM_CACHE_DIR")
    if env:
        return Path(env)
    return Path("results") / "sweep-cache"


def config_payload(config: SwitchConfig) -> Dict[str, Any]:
    """A canonical JSON-ready description of a switch configuration."""
    return {
        "buffer_size": config.buffer_size,
        "speedup": config.speedup,
        "discipline": config.discipline.value,
        "ports": [[port.work, port.value] for port in config.ports],
    }


def _point_checksum(point: Mapping[str, Any]) -> str:
    """SHA-256 of the canonical JSON form of a measurement payload."""
    canonical = json.dumps(dict(point), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class CacheVerifyReport:
    """Outcome of a full-cache integrity scan (``repro cache verify``)."""

    entries: int = 0
    ok: int = 0
    corrupt: List[str] = field(default_factory=list)
    legacy: int = 0
    quarantined: int = 0  # files already sitting in quarantine/

    @property
    def clean(self) -> bool:
        return not self.corrupt

    def summary(self) -> str:
        text = (
            f"{self.entries} entries: {self.ok} ok, "
            f"{len(self.corrupt)} corrupt, {self.legacy} legacy-schema"
        )
        if self.quarantined:
            text += f"; {self.quarantined} previously quarantined"
        return text


@dataclass
class CacheGcReport:
    """Outcome of a cache sweep (``repro cache gc``)."""

    removed_corrupt: int = 0
    removed_legacy: int = 0
    removed_quarantined: int = 0
    removed_tmp: int = 0

    @property
    def removed(self) -> int:
        return (
            self.removed_corrupt
            + self.removed_legacy
            + self.removed_quarantined
            + self.removed_tmp
        )

    def summary(self) -> str:
        return (
            f"removed {self.removed} files "
            f"({self.removed_corrupt} corrupt, {self.removed_legacy} "
            f"legacy, {self.removed_quarantined} quarantined, "
            f"{self.removed_tmp} stale temp)"
        )


class SweepCache:
    """Content-addressed store of sweep cell measurements.

    Parameters
    ----------
    root:
        Directory holding the cache; created lazily on first write.
    fault_injector:
        Optional :class:`~repro.resilience.faults.FaultInjector`; its
        ``torn`` clauses make chosen writes land truncated and
        non-atomically, simulating a writer killed mid-flush (the
        failure mode checksum-on-read exists to catch). Wired
        automatically by :func:`repro.analysis.sweep.run_sweep` when
        fault injection is active.

    The cache counts its own traffic (``hits``/``misses``/``writes``/
    ``corrupt``) so sweeps can report hit rates without threading extra
    state around.
    """

    def __init__(
        self, root: Path | str, *, fault_injector=None
    ) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.corrupt = 0
        self.fault_injector = fault_injector

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------

    def key(
        self,
        *,
        config: SwitchConfig,
        workload: Mapping[str, Any],
        policy: str,
        param_value: float,
        seed: int,
        by_value: Optional[bool],
        flush_every: Optional[int],
        drain: bool,
    ) -> str:
        """SHA-256 content address of one (cell, policy) measurement."""
        from repro import __version__

        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "engine": __version__,
            "config": config_payload(config),
            "workload": dict(workload),
            "policy": policy,
            "param_value": float(param_value),
            "seed": int(seed),
            "by_value": by_value,
            "flush_every": flush_every,
            "drain": bool(drain),
        }
        canonical = json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    @property
    def quarantine_root(self) -> Path:
        return self.root / QUARANTINE_DIR

    # ------------------------------------------------------------------
    # Storage
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored measurement dict for ``key``, or ``None`` on miss.

        Every read verifies the entry's embedded payload checksum.
        Corrupt or truncated entries (torn writes, bit rot) are moved to
        the quarantine directory and count as misses, so the cell is
        recomputed and the bad entry preserved for inspection. Entries
        from an older schema count as plain misses.
        """
        path = self._path(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except OSError:
            self.misses += 1
            return None
        except json.JSONDecodeError:
            self._quarantine(path)
            self.misses += 1
            return None
        point = _validate_entry(entry)
        if point is None:
            if isinstance(entry, dict) and entry.get("schema") not in (
                None,
                CACHE_SCHEMA_VERSION,
            ):
                # A different engine's entry at this address: leave it.
                self.misses += 1
                return None
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return point

    def put(self, key: str, point: Mapping[str, Any]) -> None:
        """Atomically store a measurement dict under ``key``.

        Raises :class:`~repro.core.errors.ConfigError` when the cache
        root is unusable (e.g. it names an existing file) so the CLI
        reports a clean error instead of a traceback.
        """
        path = self._path(key)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        payload = dict(point)
        body = json.dumps(
            {
                "schema": CACHE_SCHEMA_VERSION,
                "point": payload,
                "sha256": _point_checksum(payload),
            }
        )
        write_index = self.writes
        self.writes += 1
        if self.fault_injector is not None and self.fault_injector.should(
            "torn", write_index
        ):
            # Injected torn write: half the body, straight to the final
            # path, no atomic rename — a crashed pre-atomic writer.
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                # repro: allow[RC403] -- deliberately torn write: this branch simulates a crashed pre-atomic writer for the chaos suite
                path.write_text(
                    body[: max(1, len(body) // 2)], encoding="utf-8"
                )
            except OSError as exc:  # pragma: no cover - unusable root
                raise ConfigError(
                    f"cannot write sweep cache entry under {self.root}: "
                    f"{exc}"
                ) from exc
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            # repro: allow[RC403] -- this IS the atomic protocol: sibling tmp + fsync + os.replace two lines down
            with tmp.open("w", encoding="utf-8") as handle:
                handle.write(body)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError as exc:
            raise ConfigError(
                f"cannot write sweep cache entry under {self.root}: {exc}"
            ) from exc
        finally:
            if tmp.exists():  # pragma: no cover - only on write failure
                tmp.unlink()

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside (best effort) and count it."""
        self.corrupt += 1
        try:
            self.quarantine_root.mkdir(parents=True, exist_ok=True)
            os.replace(path, self.quarantine_root / path.name)
        except OSError:  # pragma: no cover - e.g. read-only cache
            pass

    # ------------------------------------------------------------------
    # Maintenance (repro cache verify | gc)
    # ------------------------------------------------------------------

    def _entry_files(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("??/*.json")):
            yield path

    def _tmp_files(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("??/.*.tmp")):
            yield path

    def verify(self) -> CacheVerifyReport:
        """Scan every entry: parse it and check its payload checksum.

        Read-only — corrupt entries are *reported*, not moved (use
        :meth:`gc`, or let a normal read quarantine them).
        """
        report = CacheVerifyReport()
        for path in self._entry_files():
            report.entries += 1
            status = _classify_entry(path)
            if status == "ok":
                report.ok += 1
            elif status == "legacy":
                report.legacy += 1
            else:
                report.corrupt.append(str(path))
        if self.quarantine_root.is_dir():
            report.quarantined = sum(
                1 for _ in self.quarantine_root.iterdir()
            )
        return report

    def gc(self) -> CacheGcReport:
        """Delete corrupt entries, legacy-schema entries, stale temp
        files, and everything previously quarantined."""
        report = CacheGcReport()
        for path in self._entry_files():
            status = _classify_entry(path)
            if status == "ok":
                continue
            path.unlink(missing_ok=True)
            if status == "legacy":
                report.removed_legacy += 1
            else:
                report.removed_corrupt += 1
        for path in self._tmp_files():
            path.unlink(missing_ok=True)
            report.removed_tmp += 1
        if self.quarantine_root.is_dir():
            for path in sorted(self.quarantine_root.iterdir()):
                path.unlink(missing_ok=True)
                report.removed_quarantined += 1
        return report

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 when untouched)."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SweepCache(root={str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses}, writes={self.writes}, "
            f"corrupt={self.corrupt})"
        )


def _validate_entry(entry: Any) -> Optional[Dict[str, Any]]:
    """The entry's point payload if structurally sound and checksummed."""
    if not isinstance(entry, dict):
        return None
    if entry.get("schema") != CACHE_SCHEMA_VERSION:
        return None
    point = entry.get("point")
    checksum = entry.get("sha256")
    if not isinstance(point, dict) or not isinstance(checksum, str):
        return None
    if _point_checksum(point) != checksum:
        return None
    return point


def _classify_entry(path: Path) -> str:
    """'ok' | 'legacy' (older schema) | 'corrupt' for one entry file."""
    try:
        with path.open("r", encoding="utf-8") as handle:
            entry = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return "corrupt"
    if _validate_entry(entry) is not None:
        return "ok"
    if isinstance(entry, dict) and entry.get("schema") not in (
        None,
        CACHE_SCHEMA_VERSION,
    ):
        return "legacy"
    return "corrupt"
