"""Content-addressed on-disk cache for sweep cell results.

Paper-scale Fig. 5 runs (2*10^6 slots, nine panels, multiple seeds) take
hours; interrupting one used to throw everything away. The cache stores
one :class:`~repro.analysis.sweep.SweepPoint` per file, addressed by the
SHA-256 of a canonical JSON payload describing *everything* that
determines the measurement:

* the full :class:`~repro.core.config.SwitchConfig` (buffer size, per-port
  work/value, speedup, discipline);
* a caller-supplied *workload token* naming the trace generator and its
  parameters (experiment id, model, ``n_slots``, load, ...);
* the policy name, the sweep parameter value, and the replication seed;
* the measurement knobs (``by_value``, ``flush_every``, ``drain``);
* a cache schema version and the package version, so results from an
  older engine are never silently reused after a semantic change.

Because simulations are deterministic given that payload, a hit can be
substituted for a fresh run without changing a single output byte — the
parallel/serial/cached determinism contract that
:mod:`repro.analysis.sweep` tests rely on. Entries are written atomically
(temp file + ``os.replace``) so concurrent sweeps sharing a cache
directory cannot observe torn files; unreadable or corrupt entries are
treated as misses and overwritten.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

from repro.core.config import SwitchConfig
from repro.core.errors import ConfigError

#: Bump when the cached payload layout or engine semantics change in a
#: way that invalidates previously stored measurements.
CACHE_SCHEMA_VERSION = 1


def default_cache_dir() -> Path:
    """The CLI's default cache location.

    ``SHMEM_CACHE_DIR`` overrides; otherwise ``results/sweep-cache``
    under the current directory (``results/`` is already gitignored).
    """
    env = os.environ.get("SHMEM_CACHE_DIR")
    if env:
        return Path(env)
    return Path("results") / "sweep-cache"


def config_payload(config: SwitchConfig) -> Dict[str, Any]:
    """A canonical JSON-ready description of a switch configuration."""
    return {
        "buffer_size": config.buffer_size,
        "speedup": config.speedup,
        "discipline": config.discipline.value,
        "ports": [[port.work, port.value] for port in config.ports],
    }


class SweepCache:
    """Content-addressed store of sweep cell measurements.

    Parameters
    ----------
    root:
        Directory holding the cache; created lazily on first write.

    The cache counts its own traffic (``hits``/``misses``/``writes``) so
    sweeps can report hit rates without threading extra state around.
    """

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------

    def key(
        self,
        *,
        config: SwitchConfig,
        workload: Mapping[str, Any],
        policy: str,
        param_value: float,
        seed: int,
        by_value: Optional[bool],
        flush_every: Optional[int],
        drain: bool,
    ) -> str:
        """SHA-256 content address of one (cell, policy) measurement."""
        from repro import __version__

        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "engine": __version__,
            "config": config_payload(config),
            "workload": dict(workload),
            "policy": policy,
            "param_value": float(param_value),
            "seed": int(seed),
            "by_value": by_value,
            "flush_every": flush_every,
            "drain": bool(drain),
        }
        canonical = json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # Storage
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored measurement dict for ``key``, or ``None`` on miss.

        Corrupt or truncated entries (e.g. from a killed process writing
        without the atomic path) count as misses.
        """
        path = self._path(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        point = entry.get("point")
        if not isinstance(point, dict):
            self.misses += 1
            return None
        self.hits += 1
        return point

    def put(self, key: str, point: Mapping[str, Any]) -> None:
        """Atomically store a measurement dict under ``key``.

        Raises :class:`~repro.core.errors.ConfigError` when the cache
        root is unusable (e.g. it names an existing file) so the CLI
        reports a clean error instead of a traceback.
        """
        path = self._path(key)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        body = json.dumps({"schema": CACHE_SCHEMA_VERSION, "point": dict(point)})
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with tmp.open("w", encoding="utf-8") as handle:
                handle.write(body)
            os.replace(tmp, path)
        except OSError as exc:
            raise ConfigError(
                f"cannot write sweep cache entry under {self.root}: {exc}"
            ) from exc
        finally:
            if tmp.exists():  # pragma: no cover - only on write failure
                tmp.unlink()
        self.writes += 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 when untouched)."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SweepCache(root={str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses}, writes={self.writes})"
        )
