"""Buffer-sharing analysis: how policies partition the shared buffer.

The paper frames the shared-memory switch as interpolating between
*complete sharing* (one port may monopolize the buffer; maximal
utilization, no fairness) and *complete partitioning* (NEST; perfect
fairness, wasted space). This module measures where a policy actually
lands on that spectrum over a run:

* per-port occupancy time series (sampled every slot, summarized as mean
  shares);
* buffer utilization (mean occupancy over ``B``);
* a *sharing index*: the Jain index of the time-averaged per-port
  occupancies — 1.0 for a perfectly even split, ``1/n`` for a single
  monopolist.

The expected picture, asserted in tests: NEST shows maximal evenness but
the lowest utilization; greedy push-out policies push utilization to ~1
under overload; LWD's occupancy shares track ``1/w_i`` (equal *work* per
queue means packet counts proportional to ``1/w``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.fairness import jain_index
from repro.core.config import SwitchConfig
from repro.core.errors import ConfigError
from repro.core.switch import AdmissionPolicy, SharedMemorySwitch
from repro.traffic.trace import Trace


@dataclass
class OccupancyProfile:
    """Time-averaged buffer-sharing statistics of one run."""

    policy_name: str
    buffer_size: int
    slots: int
    mean_occupancy_by_port: List[float]

    @property
    def mean_total_occupancy(self) -> float:
        return sum(self.mean_occupancy_by_port)

    @property
    def utilization(self) -> float:
        """Mean fraction of the shared buffer in use."""
        return self.mean_total_occupancy / self.buffer_size

    @property
    def shares(self) -> List[float]:
        """Per-port fraction of the occupied buffer (zeros when idle)."""
        total = self.mean_total_occupancy
        if total == 0:
            return [0.0] * len(self.mean_occupancy_by_port)
        return [x / total for x in self.mean_occupancy_by_port]

    @property
    def sharing_index(self) -> float:
        """Jain index of the occupancy shares (1.0 = complete
        partitioning's evenness, 1/n = single-port monopoly)."""
        return jain_index(self.mean_occupancy_by_port)

    def summary(self) -> str:
        return (
            f"{self.policy_name}: utilization {self.utilization:.3f}, "
            f"sharing index {self.sharing_index:.3f}"
        )


def occupancy_profile(
    policy: AdmissionPolicy,
    trace: Trace,
    config: SwitchConfig,
    *,
    flush_every: Optional[int] = None,
) -> OccupancyProfile:
    """Replay a trace, sampling per-port occupancy at every slot end."""
    if trace.n_slots == 0:
        raise ConfigError("occupancy profile of an empty trace")
    switch = SharedMemorySwitch(config)
    sums = [0.0] * config.n_ports
    for slot, arrivals in enumerate(trace):
        switch.run_slot(arrivals, policy)
        for port in range(config.n_ports):
            sums[port] += len(switch.queues[port])
        if flush_every is not None and (slot + 1) % flush_every == 0:
            switch.flush()
    return OccupancyProfile(
        policy_name=getattr(policy, "name", type(policy).__name__),
        buffer_size=config.buffer_size,
        slots=trace.n_slots,
        mean_occupancy_by_port=[s / trace.n_slots for s in sums],
    )


def compare_sharing(
    policy_names: Sequence[str],
    trace: Trace,
    config: SwitchConfig,
    *,
    flush_every: Optional[int] = None,
) -> List[OccupancyProfile]:
    """Occupancy profiles of several policies on the same trace."""
    from repro.policies import make_policy  # local import to avoid cycles

    return [
        occupancy_profile(
            make_policy(name), trace, config, flush_every=flush_every
        )
        for name in policy_names
    ]
