"""Analysis layer: competitive measurement, sweeps, statistics, theory."""

from repro.analysis.competitive import (
    CompetitiveResult,
    PolicySystem,
    measure_competitive_ratio,
    run_scenario,
    run_system,
)
from repro.analysis.conjecture import (
    ConjectureReport,
    ProbeResult,
    adversarial_search,
    evaluate_instance,
    evaluate_processing_instance,
    probe_policy,
    probe_processing_policy,
    processing_adversarial_search,
)
from repro.analysis.convergence import (
    ConvergencePoint,
    ConvergenceProfile,
    convergence_profile,
)
from repro.analysis.fairness import (
    FairnessReport,
    jain_index,
    service_profile,
    work_normalized_shares,
)
from repro.analysis.mapping import (
    MappingChecker,
    MappingReport,
    MappingViolation,
    certify_lwd,
)
from repro.analysis.occupancy import (
    OccupancyProfile,
    compare_sharing,
    occupancy_profile,
)
from repro.analysis.sensitivity import (
    OperatingPoint,
    SensitivityReport,
    run_sensitivity,
)
from repro.analysis.cache import SweepCache, config_payload, default_cache_dir
from repro.analysis.stats import Summary, geometric_mean, summarize
from repro.analysis.streaming import StreamResult, stream_competitive
from repro.analysis.sweep import (
    SweepPoint,
    SweepResult,
    SweepStats,
    resolve_jobs,
    run_sweep,
)

__all__ = [
    "CompetitiveResult",
    "ConjectureReport",
    "ConvergencePoint",
    "ConvergenceProfile",
    "FairnessReport",
    "MappingChecker",
    "MappingReport",
    "MappingViolation",
    "OccupancyProfile",
    "OperatingPoint",
    "PolicySystem",
    "SensitivityReport",
    "ProbeResult",
    "StreamResult",
    "certify_lwd",
    "stream_competitive",
    "compare_sharing",
    "jain_index",
    "occupancy_profile",
    "service_profile",
    "work_normalized_shares",
    "Summary",
    "SweepCache",
    "SweepPoint",
    "SweepResult",
    "SweepStats",
    "adversarial_search",
    "config_payload",
    "default_cache_dir",
    "resolve_jobs",
    "convergence_profile",
    "evaluate_instance",
    "evaluate_processing_instance",
    "geometric_mean",
    "measure_competitive_ratio",
    "probe_policy",
    "probe_processing_policy",
    "processing_adversarial_search",
    "run_scenario",
    "run_sensitivity",
    "run_sweep",
    "run_system",
    "summarize",
]
