"""Benchmarks: ranking robustness across traffic families, skewed
distributions, horizon convergence, and buffer-sharing profiles.

Together these back the claims EXPERIMENTS.md makes about the scope of
validity of the Fig. 5 conclusions: which orderings are traffic-model
artifacts (none of the headline ones), how the run horizon was chosen,
and where each policy lands on the complete-sharing-to-partitioning
spectrum the paper's introduction discusses.
"""

import pytest

from repro.analysis.convergence import convergence_profile
from repro.analysis.occupancy import compare_sharing
from repro.core.config import SwitchConfig
from repro.experiments.robustness import run_robustness_study
from repro.experiments.skewed import run_skew_sweep
from repro.policies import make_policy
from repro.traffic.workloads import processing_workload

from conftest import BENCH_SLOTS, run_once


def test_ranking_robustness_across_traffic_families(benchmark):
    result = run_once(
        benchmark,
        lambda: run_robustness_study(
            k=8, buffer_size=64, n_slots=max(BENCH_SLOTS, 1200), load=3.0,
        ),
    )
    print("\n=== ranking robustness across traffic families ===")
    print(result.format_table())
    benchmark.extra_info["ratios"] = {
        family: {name: round(v, 4) for name, v in row.items()}
        for family, row in result.ratios.items()
    }
    # The headline ordering holds on every bursty family.
    for family in ("mmpp", "periodic", "pareto"):
        row = result.ratios[family]
        assert row["LWD"] <= min(row.values()) + 1e-9, family
        assert row["BPD"] >= row["LWD"] + 0.3, family


def test_skewed_value_distributions(benchmark):
    result = run_once(
        benchmark,
        lambda: run_skew_sweep(
            k=8, buffer_size=64, n_slots=max(BENCH_SLOTS, 1200),
            skews=(-1.0, 0.0, 1.0, 2.0),
        ),
    )
    print("\n=== MRD-vs-LQD gap across port-value skews ===")
    print(result.format_table())
    # MRD is never much worse than LQD at any skew (the paper: "never
    # explicitly worse").
    for point in result.points:
        assert point.mrd_advantage > -0.1, point.skew


def test_horizon_convergence(benchmark):
    config = SwitchConfig.contiguous(8, 64)
    trace = processing_workload(
        config, max(4 * BENCH_SLOTS, 3000), load=3.0, seed=1
    )

    profile = run_once(
        benchmark,
        lambda: convergence_profile(
            make_policy("LWD"), trace, config, flush_every=500
        ),
    )
    print("\n=== cumulative ratio vs horizon (LWD) ===")
    print(profile.format_table())
    settled = profile.settled_after(tolerance=0.05)
    print(f"settled (5% band) after {settled} slots")
    benchmark.extra_info["settled_after"] = settled
    assert settled is not None
    assert settled <= trace.n_slots


def test_buffer_sharing_spectrum(benchmark):
    config = SwitchConfig.contiguous(8, 64)
    trace = processing_workload(
        config, max(BENCH_SLOTS, 1200), load=3.0, seed=2
    )

    profiles = run_once(
        benchmark,
        lambda: compare_sharing(
            ("NEST", "NHDT", "LQD", "LWD", "BPD"), trace, config
        ),
    )
    print("\n=== buffer sharing: utilization / sharing index ===")
    for profile in profiles:
        print(f"  {profile.summary()}")
    by_name = {p.policy_name: p for p in profiles}
    # Partitioning (NEST) utilizes the least; push-out policies the most.
    assert by_name["NEST"].utilization < by_name["LWD"].utilization
    assert by_name["NEST"].utilization < by_name["LQD"].utilization
