"""Benchmarks: streaming-pipeline throughput (the paper-scale enabler).

Measures simulated slots/second of the lock-step streaming runner
(policy + OPT surrogate fed from a generator) across switch sizes. These
are the numbers behind EXPERIMENTS.md's claim that the paper's full
2*10^6-slot horizon is practical.
"""

import pytest

from repro.analysis.sensitivity import OperatingPoint, run_sensitivity
from repro.analysis.streaming import stream_competitive
from repro.core.config import SwitchConfig
from repro.policies import make_policy
from repro.traffic.streaming import stream_processing_workload

from conftest import BENCH_SLOTS, run_once


@pytest.mark.parametrize("k", [4, 12, 24])
def test_streaming_throughput(benchmark, k):
    """Slots/second of a lock-step LWD-vs-surrogate streaming run."""
    config = SwitchConfig.contiguous(k, 8 * k)
    n_slots = max(BENCH_SLOTS, 1000)

    def run():
        return stream_competitive(
            make_policy("LWD"),
            config,
            stream_processing_workload(config, n_slots, load=3.0, seed=0),
            flush_every=500,
        )

    result = benchmark(run)
    benchmark.extra_info["slots"] = n_slots
    benchmark.extra_info["ratio"] = round(result.ratio, 4)
    assert result.slots == n_slots
    assert result.ratio >= 1.0


def test_sensitivity_tornado(benchmark):
    """The calibration tornado: which knob moves the LWD-LQD gap most."""
    report = run_once(
        benchmark,
        lambda: run_sensitivity(
            base=OperatingPoint(n_slots=max(BENCH_SLOTS, 800))
        ),
    )
    print("\n=== sensitivity of the LWD-LQD gap ===")
    print(report.format_table())
    print("tornado:", [
        f"{knob}:{swing:.3f}" for knob, swing in report.tornado()
    ])
    benchmark.extra_info["tornado"] = {
        knob: round(swing, 4) for knob, swing in report.tornado()
    }
    # Burstiness and heterogeneity dominate; buffer size is secondary.
    swings = dict(report.tornado())
    assert max(swings["duty_cycle"], swings["k"]) > swings["buffer_size"]
