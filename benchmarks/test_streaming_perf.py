"""Benchmarks: streaming-pipeline throughput (the paper-scale enabler).

Measures simulated slots/second of the lock-step streaming runner
(policy + OPT surrogate fed from a generator) across switch sizes. These
are the numbers behind EXPERIMENTS.md's claim that the paper's full
2*10^6-slot horizon is practical.
"""

import os
import time

import pytest

from repro.analysis.sensitivity import OperatingPoint, run_sensitivity
from repro.analysis.streaming import stream_competitive
from repro.core.config import SwitchConfig
from repro.experiments.fig5 import run_panel
from repro.policies import make_policy
from repro.traffic.streaming import stream_processing_workload

from conftest import BENCH_SLOTS, run_once


@pytest.mark.parametrize("k", [4, 12, 24])
def test_streaming_throughput(benchmark, k):
    """Slots/second of a lock-step LWD-vs-surrogate streaming run."""
    config = SwitchConfig.contiguous(k, 8 * k)
    n_slots = max(BENCH_SLOTS, 1000)

    def run():
        return stream_competitive(
            make_policy("LWD"),
            config,
            stream_processing_workload(config, n_slots, load=3.0, seed=0),
            flush_every=500,
        )

    result = benchmark(run)
    benchmark.extra_info["slots"] = n_slots
    benchmark.extra_info["ratio"] = round(result.ratio, 4)
    assert result.slots == n_slots
    assert result.ratio >= 1.0


def test_sensitivity_tornado(benchmark):
    """The calibration tornado: which knob moves the LWD-LQD gap most."""
    report = run_once(
        benchmark,
        lambda: run_sensitivity(
            base=OperatingPoint(n_slots=max(BENCH_SLOTS, 800))
        ),
    )
    print("\n=== sensitivity of the LWD-LQD gap ===")
    print(report.format_table())
    print("tornado:", [
        f"{knob}:{swing:.3f}" for knob, swing in report.tornado()
    ])
    benchmark.extra_info["tornado"] = {
        knob: round(swing, 4) for knob, swing in report.tornado()
    }
    # Burstiness and heterogeneity dominate; buffer size is secondary.
    swings = dict(report.tornado())
    assert max(swings["duty_cycle"], swings["k"]) > swings["buffer_size"]


def test_sweep_serial_vs_parallel(benchmark):
    """Serial vs parallel Fig. 5 sweep: identical rows, cells/s speedup.

    Times one panel slice serially, then fans the same cells out over
    worker processes (timed under the benchmark fixture). The engine's
    contract makes the comparison meaningful: both runs must produce
    identical ``SweepPoint`` rows, so the only difference *is* the
    wall-clock. On a multi-core runner the parallel run must win; on a
    single core the determinism assertions still run and the speedup
    check is skipped (process fan-out cannot beat one busy core).
    """
    jobs = min(4, os.cpu_count() or 1)
    kwargs = dict(
        n_slots=max(BENCH_SLOTS, 800),
        seeds=(0, 1),
        param_values=(2, 6, 12),
        policies=("LWD", "LQD", "BPD", "NEST"),
    )

    t_serial = time.perf_counter()
    serial = run_panel(1, **kwargs)
    t_serial = time.perf_counter() - t_serial

    parallel = run_once(benchmark, lambda: run_panel(1, **kwargs, jobs=jobs))

    assert parallel.points == serial.points  # the determinism contract
    speedup = t_serial / parallel.stats.elapsed_seconds
    print(
        f"\n=== sweep engine: serial {t_serial:.2f}s "
        f"({serial.stats.cells_per_second:.2f} cells/s) vs jobs={jobs} "
        f"{parallel.stats.elapsed_seconds:.2f}s "
        f"({parallel.stats.cells_per_second:.2f} cells/s), "
        f"speedup {speedup:.2f}x ==="
    )
    benchmark.extra_info["serial_seconds"] = round(t_serial, 3)
    benchmark.extra_info["parallel_seconds"] = round(
        parallel.stats.elapsed_seconds, 3
    )
    benchmark.extra_info["jobs"] = jobs
    benchmark.extra_info["speedup"] = round(speedup, 2)
    if jobs > 1 and (os.cpu_count() or 1) > 1:
        assert speedup > 1.1, (
            f"parallel sweep no faster than serial ({speedup:.2f}x)"
        )


def test_sweep_cache_resume(benchmark):
    """A warm cache turns a full panel re-run into pure assembly."""
    import tempfile

    from repro.analysis.cache import SweepCache

    kwargs = dict(
        n_slots=max(BENCH_SLOTS, 800),
        seeds=(0,),
        param_values=(2, 12),
        policies=("LWD", "LQD", "NEST"),
    )
    with tempfile.TemporaryDirectory() as root:
        cache = SweepCache(root)
        cold = run_panel(1, **kwargs, cache=cache)
        warm = run_once(
            benchmark, lambda: run_panel(1, **kwargs, cache=cache)
        )
    assert warm.points == cold.points
    assert warm.stats.cells_executed == 0
    assert warm.stats.cache_hit_rate == 1.0
    # Assembly from cache must crush simulation time.
    assert warm.stats.elapsed_seconds < cold.stats.elapsed_seconds / 5
    benchmark.extra_info["cold_seconds"] = round(
        cold.stats.elapsed_seconds, 3
    )
    benchmark.extra_info["warm_seconds"] = round(
        warm.stats.elapsed_seconds, 3
    )
