"""Lower-bound constructions (Theorems 1, 3, 4, 5, 6, 9, 10, 11).

Each benchmark regenerates a theorem's adversarial trace, replays the
target policy against the scripted clairvoyant OPT, and reports measured
vs. predicted ratio. These are the paper's analytic results reproduced as
executable artefacts; the assertions confirm the simulation lands within a
tight tolerance of each proof's finite-parameter ratio.
"""

import pytest

from repro.analysis.competitive import run_scenario
from repro.traffic.adversarial import (
    thm1_nhst,
    thm3_nhdt,
    thm4_lqd,
    thm5_bpd,
    thm6_lwd,
    thm9_lqd_value,
    thm10_mvd,
    thm11_mrd,
)

from conftest import record_scenario, run_once


def bench_scenario(benchmark, scenario, rel_tolerance):
    outcome = run_once(benchmark, lambda: run_scenario(scenario))
    record_scenario(benchmark, scenario, outcome)
    assert outcome.ratio == pytest.approx(
        scenario.predicted_ratio, rel=rel_tolerance
    )
    return outcome


def test_thm1_nhst(benchmark):
    """Theorem 1: NHST >= kZ (exact: B over its static allocation)."""
    bench_scenario(benchmark, thm1_nhst(k=10, buffer_size=600, rounds=2), 0.02)


def test_thm3_nhdt(benchmark):
    """Theorem 3: NHDT >= ~(1/2) sqrt(k ln k)."""
    bench_scenario(benchmark, thm3_nhdt(k=32, buffer_size=960, rounds=1), 0.25)


def test_thm4_lqd(benchmark):
    """Theorem 4: LQD >= ~sqrt(k) under heterogeneous processing."""
    bench_scenario(benchmark, thm4_lqd(k=25, buffer_size=600, rounds=1), 0.25)


def test_thm5_bpd(benchmark):
    """Theorem 5: BPD >= H_k >= ln k + gamma."""
    bench_scenario(
        benchmark, thm5_bpd(k=10, buffer_size=120, n_slots=800), 0.05
    )


def test_thm6_lwd(benchmark):
    """Theorem 6: LWD >= 4/3 - 6/B in the contiguous case."""
    outcome = bench_scenario(
        benchmark, thm6_lwd(buffer_size=360, rounds=1), 0.05
    )
    # ... while never violating the Theorem 7 guarantee.
    assert outcome.ratio <= 2.0


def test_thm9_lqd_value(benchmark):
    """Theorem 9: value-model LQD >= ~cbrt(k)."""
    bench_scenario(
        benchmark, thm9_lqd_value(k=27, buffer_size=600, rounds=1), 0.2
    )


def test_thm10_mvd(benchmark):
    """Theorem 10: MVD >= (m-1)/2 (exact: (m+1)/2 at finite sizes)."""
    bench_scenario(
        benchmark, thm10_mvd(k=16, buffer_size=160, n_slots=600), 0.02
    )


def test_thm11_mrd(benchmark):
    """Theorem 11: MRD >= ~4/3 for port-determined values."""
    bench_scenario(benchmark, thm11_mrd(buffer_size=360, rounds=1), 0.05)
