"""Fig. 5, top row — heterogeneous processing model (panels 1-3).

Each benchmark regenerates one panel: the empirical competitive ratio of
NHST, NEST, NHDT, LQD, BPD, BPD1 and LWD against the single-PQ OPT
surrogate under MMPP traffic, swept over k / B / C. Expected shapes (paper,
Section V-B): all policies degrade as k grows with non-push-out policies
degrading faster; BPD is consistently poor and BPD1 only partly fixes it;
LWD is the best policy throughout all three sweeps.
"""

from repro.experiments.fig5 import run_panel

from conftest import BENCH_SLOTS, record_series, run_once


def test_panel1_vs_k(benchmark):
    """Panel (1): ratio vs maximal work k (contiguous ports)."""
    result = run_once(
        benchmark, lambda: run_panel(1, n_slots=BENCH_SLOTS, seeds=(0,))
    )
    record_series(benchmark, result, "Fig. 5 (1): processing, ratio vs k")
    lwd = dict(result.series("LWD"))
    bpd = dict(result.series("BPD"))
    for value in result.param_values():
        assert lwd[value].mean <= bpd[value].mean


def test_panel2_vs_buffer(benchmark):
    """Panel (2): ratio vs buffer size B."""
    result = run_once(
        benchmark, lambda: run_panel(2, n_slots=BENCH_SLOTS, seeds=(0,))
    )
    record_series(benchmark, result, "Fig. 5 (2): processing, ratio vs B")
    # Congestion (and with it every ratio) relaxes as B grows.
    lwd = result.series("LWD")
    assert lwd[-1][1].mean <= lwd[0][1].mean + 0.05


def test_panel3_vs_speedup(benchmark):
    """Panel (3): ratio vs per-queue speedup C (fixed offered load)."""
    result = run_once(
        benchmark, lambda: run_panel(3, n_slots=BENCH_SLOTS, seeds=(0,))
    )
    record_series(benchmark, result, "Fig. 5 (3): processing, ratio vs C")
    # Preemptive policies pick up on speedup; with enough cores the
    # congestion dissolves and LWD converges towards the surrogate.
    lwd = result.series("LWD")
    assert lwd[-1][1].mean < lwd[0][1].mean
