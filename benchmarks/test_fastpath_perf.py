"""Regression gate for the fast-path simulation core.

Three layers of protection, from machine-independent to absolute:

1. **Head-to-head** — the indexed fast path must beat the naive O(n)
   reference selectors on the adversarial large-``n`` panel by a wide
   margin *on the same machine in the same process*. This catches a
   fast path that silently degenerates to the scan, regardless of host
   speed.
2. **Determinism drift** — every panel's per-policy objectives must
   equal the values recorded in the committed ``BENCH_seed.json``
   (produced by the pre-fast-path naive engine). Any mismatch means the
   fast path changed simulation *decisions*, not just speed.
3. **Absolute throughput** — the small panels must stay within 25% of
   the committed baseline rates, and the adversarial large-``n`` panel
   must hold the 2x speedup the fast path was built for. These compare
   against numbers recorded on the development machine; on much slower
   hardware rerun ``repro bench --tag seed --mode naive`` to re-pin.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench import (
    PANELS,
    compare_reports,
    load_report,
    run_bench,
    run_obs_bench,
    run_panel_bench,
    select_panels,
)

from conftest import run_once

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_seed.json"
FASTPATH_BASELINE_PATH = (
    Path(__file__).resolve().parent / "BENCH_fastpath.json"
)


@pytest.fixture(scope="module")
def seed_report():
    return load_report(BASELINE_PATH)


@pytest.fixture(scope="module")
def fastpath_report():
    return load_report(FASTPATH_BASELINE_PATH)


def test_fast_beats_naive_head_to_head(benchmark):
    panel = PANELS["adversarial-proc-large"]
    naive = run_panel_bench(panel, mode="naive", slots_scale=0.2)
    fast = run_once(
        benchmark,
        lambda: run_panel_bench(panel, mode="fast", slots_scale=0.2),
    )
    benchmark.extra_info["fast_slots_per_s"] = round(fast.slots_per_s, 1)
    benchmark.extra_info["naive_slots_per_s"] = round(naive.slots_per_s, 1)
    # Measured ~9x on the development machine; 1.5x leaves room for noise
    # while still catching an index that stopped being used.
    assert fast.slots_per_s >= 1.5 * naive.slots_per_s


def test_objectives_match_seed_recordings(seed_report):
    # The seed report was produced by the pre-fast-path engine: equal
    # objectives here prove the rewrite is decision-identical across
    # engine versions, not merely self-consistent.
    for name, base_panel in seed_report["panels"].items():
        result = run_panel_bench(PANELS[name], mode="fast")
        expected = {
            t["policy"]: t["objective"] for t in base_panel["per_policy"]
        }
        actual = {t.policy: t.objective for t in result.timings}
        assert actual == expected, f"objective drift on panel {name}"


def test_no_regression_vs_seed_on_small_panels(benchmark, seed_report):
    report = run_once(
        benchmark,
        lambda: run_bench(select_panels(["small"]), tag="gate", mode="fast"),
    )
    regressions = compare_reports(report, seed_report, max_regression=0.25)
    assert not regressions, "; ".join(str(r) for r in regressions)


def test_adversarial_large_holds_2x_speedup(benchmark, seed_report):
    panel = PANELS["adversarial-proc-large"]
    result = run_once(
        benchmark, lambda: run_panel_bench(panel, mode="fast")
    )
    base = float(
        seed_report["panels"]["adversarial-proc-large"]["slots_per_s"]
    )
    benchmark.extra_info["slots_per_s"] = round(result.slots_per_s, 1)
    benchmark.extra_info["seed_slots_per_s"] = base
    assert result.slots_per_s >= 2.0 * base


def test_disabled_observer_holds_fastpath_rates(benchmark, fastpath_report):
    """The observability fence: with no observer attached, the engine
    must stay within 3% of the pre-observer fast-path baseline
    (``BENCH_fastpath.json``). The disabled path adds exactly one
    ``is None`` check per arrival; anything slower than 3% means hot-path
    work crept in. Best-of-5 per panel absorbs scheduler noise — single
    runs on this hardware already wander by ~3%.
    """

    def best_of_five():
        best = {}
        for name in fastpath_report["panels"]:
            best[name] = max(
                run_panel_bench(PANELS[name], mode="fast").slots_per_s
                for _ in range(5)
            )
        return best

    rates = run_once(benchmark, best_of_five)
    failures = []
    for name, base_panel in fastpath_report["panels"].items():
        base = float(base_panel["slots_per_s"])
        rate = rates[name]
        benchmark.extra_info[name] = round(rate, 1)
        if rate < 0.97 * base:
            failures.append(
                f"{name}: {rate:.1f} slots/s < 97% of baseline {base:.1f}"
            )
    assert not failures, "; ".join(failures)


def test_recording_overhead_reported_not_gated(benchmark):
    """JSONL recording costs what it costs — the contract is only that
    the cost is *measured and published* (BENCH_obs.json), never paid by
    disabled runs. This records the current numbers into the benchmark
    artifact; the sole hard assertion is that recording left the
    simulation unchanged (``run_obs_bench`` raises otherwise).
    """
    report = run_once(
        benchmark,
        lambda: run_obs_bench(
            select_panels(["small"]), tag="perf-gate", slots_scale=0.5
        ),
    )
    for name, panel in report["panels"].items():
        benchmark.extra_info[f"{name}_overhead_pct"] = panel[
            "recording_overhead_pct"
        ]
        benchmark.extra_info[f"{name}_trace_bytes"] = panel["trace_bytes"]
        assert panel["events"] > 0
        assert panel["trace_bytes"] > 0
