"""Benchmark: the Fig. 1 architecture comparison (Section I's motivation).

Regenerates the throughput-vs-starvation trade-off between the classical
single-queue design and the paper's shared-memory switch, asserting the
introduction's claims: single-queue PQ maximizes throughput but starves
the heaviest traffic classes; shared-memory LWD serves every class.
"""

from repro.experiments.architecture import run_architecture_comparison

from conftest import BENCH_SLOTS, run_once


def test_architecture_comparison(benchmark):
    result = run_once(
        benchmark,
        lambda: run_architecture_comparison(
            k=8, buffer_size=64, n_slots=max(BENCH_SLOTS, 1500),
            load=3.0, seed=0,
        ),
    )
    print("\n=== Fig. 1 architecture comparison ===")
    print(result.format_table())
    benchmark.extra_info["totals"] = result.totals
    benchmark.extra_info["pq_min_acceptance"] = round(
        result.min_acceptance("SQ-PQ"), 4
    )
    benchmark.extra_info["lwd_min_acceptance"] = round(
        result.min_acceptance("SM-LWD"), 4
    )
    # Section I, claim 1: single-queue PQ is throughput-optimal.
    assert result.totals["SQ-PQ"] == max(result.totals.values())
    # Section I, claim 2: ... by starving heavy classes, which the
    # shared-memory switch does not.
    assert result.min_acceptance("SQ-PQ") < 0.02
    assert result.min_acceptance("SM-LWD") > 0.05
