"""Fig. 5, middle row — value model, uniform port x value (panels 4-6).

Expected shapes (paper, Section V-C): the ratio first grows with k while
the surrogate exploits extra capacity better, then congestion resolves and
the online policies catch up; MRD leads but its gap to LQD is small; MVD
and MVD1 trail; at high speedup MVD overtakes LQD.
"""

from repro.experiments.fig5 import run_panel

from conftest import BENCH_SLOTS, record_series, run_once


def test_panel4_vs_k(benchmark):
    """Panel (4): ratio vs maximal value k (k ports, fixed offered rate)."""
    result = run_once(
        benchmark, lambda: run_panel(4, n_slots=BENCH_SLOTS, seeds=(0,))
    )
    record_series(benchmark, result, "Fig. 5 (4): value-uniform, ratio vs k")
    mrd = dict(result.series("MRD"))
    lqd = dict(result.series("LQD-V"))
    greedy = dict(result.series("Greedy"))
    for value in result.param_values():
        assert mrd[value].mean <= lqd[value].mean + 0.02
        assert greedy[value].mean >= mrd[value].mean


def test_panel5_vs_buffer(benchmark):
    """Panel (5): ratio vs buffer size B."""
    result = run_once(
        benchmark, lambda: run_panel(5, n_slots=BENCH_SLOTS, seeds=(0,))
    )
    record_series(benchmark, result, "Fig. 5 (5): value-uniform, ratio vs B")
    mrd = result.series("MRD")
    assert mrd[-1][1].mean <= mrd[0][1].mean + 0.1


def test_panel6_vs_speedup(benchmark):
    """Panel (6): ratio vs speedup C (fixed offered rate)."""
    result = run_once(
        benchmark, lambda: run_panel(6, n_slots=BENCH_SLOTS, seeds=(0,))
    )
    record_series(benchmark, result, "Fig. 5 (6): value-uniform, ratio vs C")
    # Congestion resolves with speedup: every policy's ratio falls.
    for policy in ("LQD-V", "MVD", "MRD"):
        series = result.series(policy)
        assert series[-1][1].mean < series[0][1].mean
