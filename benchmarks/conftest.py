"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table/figure element of the paper and
*prints the series it produces* (run pytest with ``-s`` to see them inline;
they are also attached to the benchmark records via ``extra_info``).

Benchmarks default to laptop-scale runs (hundreds to thousands of slots
instead of the paper's 2*10^6); set ``SHMEM_BENCH_SLOTS`` to scale up.
"""

from __future__ import annotations

import os

import pytest

#: Default simulated slots per benchmark run; override via environment.
BENCH_SLOTS = int(os.environ.get("SHMEM_BENCH_SLOTS", "800"))


def run_once(benchmark, func):
    """Execute ``func`` exactly once under benchmark timing.

    Fig. 5 panels are deterministic given their seed, so repeating rounds
    only wastes wall-clock; one timed round per benchmark is the right
    trade-off for a simulation harness.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)


def record_series(benchmark, result, label):
    """Print a sweep's ratio table and attach it to the benchmark record."""
    table = result.format_table()
    print(f"\n=== {label} ===")
    print(table)
    benchmark.extra_info["series"] = {
        policy: [
            (value, round(summary.mean, 4))
            for value, summary in result.series(policy)
        ]
        for policy in result.policies()
    }


def record_scenario(benchmark, scenario, outcome):
    """Print and record a lower-bound scenario's measured vs predicted."""
    print(
        f"\n=== {scenario.name} ({scenario.theorem}) ===\n"
        f"target policy   : {scenario.target_policy}\n"
        f"predicted ratio : {scenario.predicted_ratio:.4f}\n"
        f"measured ratio  : {outcome.ratio:.4f}"
    )
    benchmark.extra_info["predicted_ratio"] = round(scenario.predicted_ratio, 4)
    benchmark.extra_info["measured_ratio"] = round(outcome.ratio, 4)
