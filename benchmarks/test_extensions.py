"""Benchmarks for the extension policies and the conjecture probe.

These quantify the claims EXPERIMENTS.md makes about material beyond the
paper: NHDT-W's improvement on the open NHDT-generalization problem, the
"never empty a queue" refinement applied to the good policies, and the
exact-OPT conjecture probe for MRD.
"""

import pytest

from repro.analysis.competitive import measure_competitive_ratio
from repro.analysis.conjecture import adversarial_search, probe_policy
from repro.core.config import SwitchConfig
from repro.policies import make_policy
from repro.traffic.adversarial import thm3_nhdt
from repro.traffic.workloads import processing_workload, value_port_workload

from conftest import BENCH_SLOTS, run_once


def test_nhdtw_on_theorem3_nemesis(benchmark):
    """NHDT-W vs NHDT on the Theorem 3 adversarial trace."""
    scenario = thm3_nhdt(k=32, buffer_size=960, rounds=1)

    def run():
        return {
            name: measure_competitive_ratio(
                make_policy(name), scenario.trace, scenario.config,
                by_value=False, opt="scripted",
            ).ratio
            for name in ("NHDT", "NHDT-W")
        }

    ratios = run_once(benchmark, run)
    print(
        f"\n=== NHDT-W vs NHDT on Thm 3 trace (k=32) ===\n"
        f"NHDT   : {ratios['NHDT']:.3f}\n"
        f"NHDT-W : {ratios['NHDT-W']:.3f}"
    )
    benchmark.extra_info.update(
        {k: round(v, 4) for k, v in ratios.items()}
    )
    # The work-aware generalization must cut the blow-up by at least half.
    assert ratios["NHDT-W"] < 0.5 * ratios["NHDT"]


def test_nhdtw_on_mmpp(benchmark):
    """NHDT-W should not lose to NHDT on ordinary bursty traffic either."""
    config = SwitchConfig.contiguous(12, 96)
    trace = processing_workload(config, BENCH_SLOTS, load=3.0, seed=0)

    def run():
        return {
            name: measure_competitive_ratio(
                make_policy(name), trace, config,
                by_value=False, flush_every=400,
            ).ratio
            for name in ("NHDT", "NHDT-W", "LWD")
        }

    ratios = run_once(benchmark, run)
    print(
        "\n=== NHDT-W vs NHDT on MMPP (k=12) ===\n"
        + "\n".join(f"{k:7s}: {v:.3f}" for k, v in ratios.items())
    )
    assert ratios["NHDT-W"] <= ratios["NHDT"] + 0.05


def test_one_packet_refinement_on_good_policies(benchmark):
    """BPD needs BPD1; do LWD/MRD need LWD1/MRD1? (Answer: barely.)"""
    proc_config = SwitchConfig.contiguous(8, 64)
    proc_trace = processing_workload(
        proc_config, BENCH_SLOTS, load=3.0, seed=4
    )
    value_config = SwitchConfig.value_contiguous(8, 64)
    value_trace = value_port_workload(
        value_config, BENCH_SLOTS, load=3.0, seed=4
    )

    def run():
        out = {}
        for name in ("LWD", "LWD1"):
            out[name] = measure_competitive_ratio(
                make_policy(name), proc_trace, proc_config,
                by_value=False, flush_every=400,
            ).ratio
        for name in ("MRD", "MRD1"):
            out[name] = measure_competitive_ratio(
                make_policy(name), value_trace, value_config,
                by_value=True, flush_every=400,
            ).ratio
        return out

    ratios = run_once(benchmark, run)
    print(
        "\n=== 'never empty a queue' refinement ===\n"
        + "\n".join(f"{k:5s}: {v:.3f}" for k, v in ratios.items())
    )
    # The refinement must not break the good policies.
    assert ratios["LWD1"] <= ratios["LWD"] + 0.15
    assert ratios["MRD1"] <= ratios["MRD"] + 0.15


def test_mrd_conjecture_probe(benchmark):
    """Exact worst-case probe of MRD vs the true OPT on tiny instances."""

    def run():
        report = probe_policy("MRD", trials=120, seed=0)
        climbed = adversarial_search(
            "MRD", restarts=3, steps_per_restart=40, seed=0
        )
        return report, climbed

    report, climbed = run_once(benchmark, run)
    print(
        f"\n=== MRD conjecture probe (exact OPT) ===\n"
        f"random sample : {report.summary()}\n"
        f"hill-climb    : worst ratio {climbed.ratio:.4f}"
    )
    benchmark.extra_info["worst_random"] = round(report.worst_ratio, 4)
    benchmark.extra_info["worst_climbed"] = round(climbed.ratio, 4)
    assert max(report.worst_ratio, climbed.ratio) < 2.0
