"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not part of the paper's figures, but each probes a knob the reproduction
had to fix where the paper is silent:

* flushout interval — Section V-A mentions "periodic flushouts" without a
  period; the ablation shows orderings are stable across intervals;
* traffic burstiness — policies only separate under intermittent per-port
  traffic; the ablation quantifies how the LWD/BPD gap widens with
  burstiness;
* OPT surrogate strength — the paper's surrogate has n*C cores; giving it
  more cores inflates every ratio without reordering policies;
* engine throughput — packets/second of the simulation core per policy,
  the practical limit on paper-scale (2*10^6 slot) runs.
"""

import pytest

from repro.analysis.competitive import measure_competitive_ratio
from repro.core.config import SwitchConfig
from repro.opt.surrogate import SrptSurrogate
from repro.policies import make_policy
from repro.traffic.workloads import processing_workload

from conftest import BENCH_SLOTS, run_once


@pytest.fixture(scope="module")
def workload():
    config = SwitchConfig.contiguous(8, 64)
    trace = processing_workload(
        config, max(BENCH_SLOTS, 600), load=3.0, seed=21,
        mean_on_slots=20, mean_off_slots=1980,
    )
    return config, trace


def test_ablation_flushout_interval(benchmark, workload):
    """LWD < BPD must hold regardless of the flushout period."""
    config, trace = workload

    def sweep():
        rows = {}
        for flush_every in (200, 500, None):
            rows[flush_every] = {
                name: measure_competitive_ratio(
                    make_policy(name), trace, config,
                    by_value=False, flush_every=flush_every,
                ).ratio
                for name in ("LWD", "LQD", "BPD")
            }
        return rows

    rows = run_once(benchmark, sweep)
    print("\n=== ablation: flushout interval ===")
    for flush_every, ratios in rows.items():
        label = "none" if flush_every is None else str(flush_every)
        print(
            f"flush={label:>5s}: "
            + " ".join(f"{k}={v:.3f}" for k, v in ratios.items())
        )
        assert ratios["LWD"] <= ratios["LQD"] + 0.02
        assert ratios["LWD"] < ratios["BPD"]
    benchmark.extra_info["rows"] = {
        str(k): {n: round(v, 4) for n, v in r.items()}
        for k, r in rows.items()
    }


def test_ablation_burstiness(benchmark):
    """Policies only separate under intermittent per-port traffic.

    Under a smooth sustained overload every work-conserving policy keeps
    all ports busy and ties LWD exactly; as the source duty cycle drops
    (same mean rate, rarer and more intense bursts), buffer allocation
    starts deciding which ports starve and the gap between LWD and the
    partitioning NEST policy opens up. (BPD is excluded here: its port
    starvation is work-driven and shows even under smooth load.)
    """
    config = SwitchConfig.contiguous(8, 64)

    def sweep():
        gaps = {}
        for mean_on, mean_off in ((10, 30), (20, 380), (20, 1980)):
            trace = processing_workload(
                config, max(BENCH_SLOTS, 600), load=3.0, seed=5,
                mean_on_slots=mean_on, mean_off_slots=mean_off,
            )
            lwd = measure_competitive_ratio(
                make_policy("LWD"), trace, config,
                by_value=False, flush_every=400,
            ).ratio
            nest = measure_competitive_ratio(
                make_policy("NEST"), trace, config,
                by_value=False, flush_every=400,
            ).ratio
            duty = mean_on / (mean_on + mean_off)
            gaps[duty] = nest - lwd
        return gaps

    gaps = run_once(benchmark, sweep)
    print("\n=== ablation: source duty cycle vs NEST-LWD gap ===")
    for duty, gap in sorted(gaps.items(), reverse=True):
        print(f"duty={duty:6.3f}: NEST - LWD = {gap:+.3f}")
    duties = sorted(gaps, reverse=True)  # smooth -> bursty
    assert gaps[duties[-1]] > gaps[duties[0]]
    benchmark.extra_info["gaps"] = {
        f"{d:.4f}": round(g, 4) for d, g in gaps.items()
    }


def test_ablation_surrogate_cores(benchmark, workload):
    """More surrogate cores shift all ratios up but keep the ordering."""
    config, trace = workload

    def sweep():
        rows = {}
        for cores in (config.n_ports, 2 * config.n_ports):
            rows[cores] = {
                name: measure_competitive_ratio(
                    make_policy(name), trace, config, by_value=False,
                    opt=SrptSurrogate(config, cores=cores),
                    flush_every=400,
                ).ratio
                for name in ("LWD", "BPD")
            }
        return rows

    rows = run_once(benchmark, sweep)
    print("\n=== ablation: OPT surrogate cores ===")
    for cores, ratios in rows.items():
        print(
            f"cores={cores:3d}: "
            + " ".join(f"{k}={v:.3f}" for k, v in ratios.items())
        )
    small, large = sorted(rows)
    assert rows[large]["LWD"] >= rows[small]["LWD"]
    assert rows[small]["LWD"] < rows[small]["BPD"]
    assert rows[large]["LWD"] < rows[large]["BPD"]


@pytest.mark.parametrize("policy_name", ["LWD", "LQD", "NHDT", "MRD"])
def test_engine_throughput(benchmark, policy_name):
    """Simulation-core packets/second per policy (micro-benchmark)."""
    if policy_name == "MRD":
        config = SwitchConfig.value_contiguous(8, 64)
        trace = processing_workload  # placeholder, replaced below
        from repro.traffic.workloads import value_port_workload

        trace = value_port_workload(
            config, 400, load=3.0, seed=1,
            mean_on_slots=20, mean_off_slots=380,
        )
        by_value = True
    else:
        config = SwitchConfig.contiguous(8, 64)
        trace = processing_workload(
            config, 400, load=3.0, seed=1,
            mean_on_slots=20, mean_off_slots=380,
        )
        by_value = False

    def run():
        return measure_competitive_ratio(
            make_policy(policy_name), trace, config, by_value=by_value
        )

    result = benchmark(run)
    benchmark.extra_info["trace_packets"] = trace.total_packets
    assert result.ratio >= 0.99
