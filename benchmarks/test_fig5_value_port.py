"""Fig. 5, bottom row — value model, value determined by port (panels 7-9).

Expected shapes (paper, Section V-C): MRD performs noticeably better than
LQD in this regime; MVD falls far behind (its Theorem 10 pathology is
port-stratified values); the greedy non-push-out baseline is worst and
degrades roughly linearly in k.
"""

from repro.experiments.fig5 import run_panel

from conftest import BENCH_SLOTS, record_series, run_once


def test_panel7_vs_k(benchmark):
    """Panel (7): ratio vs maximal value k (value = port label)."""
    result = run_once(
        benchmark, lambda: run_panel(7, n_slots=BENCH_SLOTS, seeds=(0,))
    )
    record_series(benchmark, result, "Fig. 5 (7): value=port, ratio vs k")
    mrd = dict(result.series("MRD"))
    lqd = dict(result.series("LQD-V"))
    mvd = dict(result.series("MVD"))
    for value in result.param_values():
        assert mrd[value].mean <= lqd[value].mean + 0.02
        if value >= 4:
            assert mvd[value].mean > mrd[value].mean


def test_panel8_vs_buffer(benchmark):
    """Panel (8): ratio vs buffer size B."""
    result = run_once(
        benchmark, lambda: run_panel(8, n_slots=BENCH_SLOTS, seeds=(0,))
    )
    record_series(benchmark, result, "Fig. 5 (8): value=port, ratio vs B")
    mrd = result.series("MRD")
    assert mrd[-1][1].mean <= mrd[0][1].mean + 0.1


def test_panel9_vs_speedup(benchmark):
    """Panel (9): ratio vs speedup C (fixed offered rate)."""
    result = run_once(
        benchmark, lambda: run_panel(9, n_slots=BENCH_SLOTS, seeds=(0,))
    )
    record_series(benchmark, result, "Fig. 5 (9): value=port, ratio vs C")
    for policy in ("MRD", "LQD-V"):
        series = result.series(policy)
        assert series[-1][1].mean < series[0][1].mean
